#include "graph/dag.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"

namespace df::graph {

VertexId Dag::add_vertex(std::string name) {
  DF_CHECK(!name.empty(), "vertex name must be non-empty");
  DF_CHECK(by_name_.find(name) == by_name_.end(), "duplicate vertex name '",
           name, "'");
  const auto id = static_cast<VertexId>(names_.size());
  by_name_.emplace(name, id);
  names_.push_back(std::move(name));
  in_edges_.emplace_back();
  out_edges_.emplace_back();
  return id;
}

void Dag::add_edge(VertexId from, Port from_port, VertexId to, Port to_port) {
  check_vertex(from);
  check_vertex(to);
  DF_CHECK(from != to, "self-loop on vertex '", names_[from], "'");
  for (const Edge& e : in_edges_[to]) {
    DF_CHECK(e.to_port != to_port, "input port ", to_port, " of '",
             names_[to], "' already has an incoming edge");
  }
  const Edge edge{from, from_port, to, to_port};
  edges_.push_back(edge);
  out_edges_[from].push_back(edge);
  // Keep in-edges ordered by destination port for stable input iteration.
  auto& ins = in_edges_[to];
  ins.insert(std::upper_bound(ins.begin(), ins.end(), edge,
                              [](const Edge& a, const Edge& b) {
                                return a.to_port < b.to_port;
                              }),
             edge);
}

const std::string& Dag::name(VertexId v) const {
  check_vertex(v);
  return names_[v];
}

VertexId Dag::vertex(const std::string& name) const {
  const auto it = by_name_.find(name);
  DF_CHECK(it != by_name_.end(), "unknown vertex name '", name, "'");
  return it->second;
}

bool Dag::has_vertex(const std::string& name) const {
  return by_name_.find(name) != by_name_.end();
}

const std::vector<Edge>& Dag::in_edges(VertexId v) const {
  check_vertex(v);
  return in_edges_[v];
}

const std::vector<Edge>& Dag::out_edges(VertexId v) const {
  check_vertex(v);
  return out_edges_[v];
}

std::vector<VertexId> Dag::sources() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < vertex_count(); ++v) {
    if (is_source(v)) {
      out.push_back(v);
    }
  }
  return out;
}

std::vector<VertexId> Dag::sinks() const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < vertex_count(); ++v) {
    if (is_sink(v)) {
      out.push_back(v);
    }
  }
  return out;
}

std::size_t Dag::in_port_count(VertexId v) const {
  const auto& ins = in_edges(v);
  return ins.empty() ? 0 : static_cast<std::size_t>(ins.back().to_port) + 1;
}

std::size_t Dag::out_port_count(VertexId v) const {
  std::size_t ports = 0;
  for (const Edge& e : out_edges(v)) {
    ports = std::max(ports, static_cast<std::size_t>(e.from_port) + 1);
  }
  return ports;
}

bool Dag::is_acyclic() const {
  // Kahn's algorithm: the graph is acyclic iff all vertices drain.
  std::vector<std::size_t> pending(vertex_count());
  std::queue<VertexId> frontier;
  for (VertexId v = 0; v < vertex_count(); ++v) {
    pending[v] = in_degree(v);
    if (pending[v] == 0) {
      frontier.push(v);
    }
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    ++visited;
    for (const Edge& e : out_edges_[v]) {
      if (--pending[e.to] == 0) {
        frontier.push(e.to);
      }
    }
  }
  return visited == vertex_count();
}

void Dag::validate() const {
  DF_CHECK(vertex_count() > 0, "graph has no vertices");
  DF_CHECK(is_acyclic(), "graph has a directed cycle");
  for (VertexId v = 0; v < vertex_count(); ++v) {
    // Input ports must be dense: a module reads ports 0..k-1.
    const auto& ins = in_edges_[v];
    for (std::size_t i = 0; i < ins.size(); ++i) {
      DF_CHECK(ins[i].to_port == i, "vertex '", names_[v],
               "' input ports are not dense (missing port ", i, ")");
    }
  }
}

void Dag::check_vertex(VertexId v) const {
  DF_CHECK(v < names_.size(), "vertex id ", v, " out of range");
}

}  // namespace df::graph
