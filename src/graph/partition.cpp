#include "graph/partition.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace df::graph {

std::size_t Partitioning::block_of(std::uint32_t v) const {
  DF_CHECK(v >= 1 && v <= bounds.back(), "index out of range");
  // bounds is sorted; find the first bound >= v.
  const auto it = std::lower_bound(bounds.begin() + 1, bounds.end(), v);
  return static_cast<std::size_t>(it - bounds.begin()) - 1;
}

namespace {

void check_blocks(std::uint32_t n, std::size_t blocks) {
  DF_CHECK(blocks >= 1, "need at least one block");
  DF_CHECK(blocks <= n, "more blocks than vertices");
}

}  // namespace

Partitioning partition_balanced(const Numbering& numbering,
                                std::size_t blocks) {
  return partition_balanced_range(numbering.size(), blocks);
}

Partitioning partition_balanced_range(std::uint32_t n, std::size_t blocks) {
  check_blocks(n, blocks);
  Partitioning partitioning;
  partitioning.bounds.push_back(0);
  for (std::size_t k = 1; k <= blocks; ++k) {
    partitioning.bounds.push_back(
        static_cast<std::uint32_t>(k * n / blocks));
  }
  return partitioning;
}

std::vector<std::uint32_t> block_local_m(const Dag& dag,
                                         const Numbering& numbering,
                                         std::uint32_t begin,
                                         std::uint32_t end) {
  if (begin > end) {
    return {0};  // empty block: n = 0, m(0) = 0
  }
  DF_CHECK(begin >= 1 && end <= numbering.size(),
           "block [", begin, ", ", end, "] outside internal index range");
  const std::uint32_t b = end - begin + 1;
  // Prefix-max of the block-local releases (see the header for why the raw
  // local releases are not monotone and the prefix max is).
  std::uint32_t running_release = 0;
  std::vector<std::uint32_t> histogram(b + 1, 0);
  for (std::uint32_t y = 1; y <= b; ++y) {
    const VertexId v = numbering.vertex_at[begin + y - 1];
    std::uint32_t r_loc = 0;
    for (const Edge& e : dag.in_edges(v)) {
      const std::uint32_t pred = numbering.index_of[e.from];
      if (pred >= begin && pred <= end) {
        r_loc = std::max(r_loc, pred - begin + 1);
      }
    }
    running_release = std::max(running_release, r_loc);
    ++histogram[running_release];
  }
  std::vector<std::uint32_t> m(b + 1, 0);
  std::uint32_t running = 0;
  for (std::uint32_t x = 0; x <= b; ++x) {
    running += histogram[x];
    m[x] = running;
  }
  return m;
}

Partitioning partition_weighted(const Numbering& numbering,
                                const std::vector<double>& weight,
                                std::size_t blocks) {
  const std::uint32_t n = numbering.size();
  check_blocks(n, blocks);
  DF_CHECK(weight.size() == n + 1, "need one weight per internal index");

  double total = 0.0;
  for (std::uint32_t v = 1; v <= n; ++v) {
    DF_CHECK(weight[v] >= 0.0, "weights must be non-negative");
    total += weight[v];
  }

  Partitioning partitioning;
  partitioning.bounds.push_back(0);
  double accumulated = 0.0;
  std::uint32_t v = 1;
  for (std::size_t k = 1; k < blocks; ++k) {
    const double target = total * static_cast<double>(k) /
                          static_cast<double>(blocks);
    // Leave enough vertices for the remaining blocks to be non-empty.
    const std::uint32_t max_bound =
        n - static_cast<std::uint32_t>(blocks - k);
    while (v <= max_bound && accumulated + weight[v] / 2.0 < target) {
      accumulated += weight[v];
      ++v;
    }
    const std::uint32_t bound =
        std::max<std::uint32_t>(v - 1, partitioning.bounds.back() + 1);
    partitioning.bounds.push_back(std::min(bound, max_bound));
    v = partitioning.bounds.back() + 1;
  }
  partitioning.bounds.push_back(n);
  return partitioning;
}

Partitioning partition_min_cut(const Dag& dag, const Numbering& numbering,
                               std::size_t blocks, std::uint32_t slack) {
  const std::uint32_t n = numbering.size();
  Partitioning partitioning = partition_balanced(numbering, blocks);
  if (blocks == 1) {
    return partitioning;
  }

  // Edge endpoints in internal-index space.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(dag.edge_count());
  for (const Edge& e : dag.edges()) {
    edges.emplace_back(numbering.index_of[e.from], numbering.index_of[e.to]);
  }

  // Total edge cut for a full boundary vector: edges whose endpoints fall
  // in different blocks (counted once, even if they span many boundaries).
  const auto total_cut = [&](const std::vector<std::uint32_t>& bounds) {
    std::size_t count = 0;
    for (const auto& [from, to] : edges) {
      // Blocks differ iff some boundary b satisfies from <= b < to.
      for (std::size_t k = 1; k + 1 < bounds.size(); ++k) {
        if (from <= bounds[k] && bounds[k] < to) {
          ++count;
          break;
        }
      }
    }
    return count;
  };

  // Slide each interior boundary within +/- slack to the position that
  // minimizes the *global* cut (so refinement is never worse than the
  // balanced starting point), keeping boundaries strictly increasing so no
  // block empties. One pass per boundary, left to right.
  for (std::size_t k = 1; k < partitioning.bounds.size() - 1; ++k) {
    const std::uint32_t lo = std::max<std::uint32_t>(
        partitioning.bounds[k - 1] + 1,
        partitioning.bounds[k] > slack ? partitioning.bounds[k] - slack : 1);
    const std::uint32_t hi =
        std::min<std::uint32_t>(partitioning.bounds[k + 1] - 1,
                                std::min(partitioning.bounds[k] + slack,
                                         n - 1));
    std::uint32_t best = partitioning.bounds[k];
    std::size_t best_cut = total_cut(partitioning.bounds);
    for (std::uint32_t b = lo; b <= hi; ++b) {
      partitioning.bounds[k] = b;
      const std::size_t cut = total_cut(partitioning.bounds);
      if (cut < best_cut) {
        best_cut = cut;
        best = b;
      }
    }
    partitioning.bounds[k] = best;
  }
  return partitioning;
}

void validate_partition_cut(const Partitioning& partitioning, std::uint32_t n,
                            std::size_t expected_blocks) {
  DF_CHECK(expected_blocks >= 1, "need at least one block");
  DF_CHECK(partitioning.bounds.size() == expected_blocks + 1,
           "partitioning has ", partitioning.bounds.size() - 1,
           " blocks, expected ", expected_blocks);
  DF_CHECK(partitioning.bounds.front() == 0,
           "partition bounds must start at 0, got ",
           partitioning.bounds.front());
  DF_CHECK(partitioning.bounds.back() == n,
           "partitioning covers 1..", partitioning.bounds.back(),
           " but the graph has ", n, " vertices");
  for (std::size_t k = 0; k + 1 < partitioning.bounds.size(); ++k) {
    DF_CHECK(partitioning.bounds[k] <= partitioning.bounds[k + 1],
             "partition bounds decrease at block ", k, ": ",
             partitioning.bounds[k], " > ", partitioning.bounds[k + 1]);
  }
}

ShardMap make_shard_map(const Partitioning& partitioning) {
  DF_CHECK(partitioning.bounds.size() >= 2 && partitioning.bounds.front() == 0,
           "partitioning has no blocks");
  ShardMap map;
  map.bounds = partitioning.bounds;
  map.shard_of.assign(map.vertex_count() + 1, 0);
  for (std::size_t k = 0; k < map.shard_count(); ++k) {
    DF_CHECK(map.bounds[k] < map.bounds[k + 1],
             "partition block ", k, " is empty");
    for (std::uint32_t v = map.begin(k); v <= map.end(k); ++v) {
      map.shard_of[v] = static_cast<std::uint32_t>(k);
    }
  }
  return map;
}

PartitionMetrics evaluate_partitioning(const Dag& dag,
                                       const Numbering& numbering,
                                       const Partitioning& partitioning) {
  PartitionMetrics metrics;
  metrics.blocks = partitioning.block_count();
  metrics.min_block = numbering.size();
  for (std::size_t k = 0; k < metrics.blocks; ++k) {
    const std::uint32_t size =
        partitioning.block_end(k) - partitioning.block_begin(k) + 1;
    metrics.max_block = std::max(metrics.max_block, size);
    metrics.min_block = std::min(metrics.min_block, size);
  }
  for (const Edge& e : dag.edges()) {
    if (partitioning.block_of(numbering.index_of[e.from]) !=
        partitioning.block_of(numbering.index_of[e.to])) {
      ++metrics.edge_cut;
    }
  }
  metrics.imbalance = static_cast<double>(metrics.max_block) *
                      static_cast<double>(metrics.blocks) /
                      static_cast<double>(numbering.size());
  return metrics;
}

}  // namespace df::graph
