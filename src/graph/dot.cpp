#include "graph/dot.hpp"

#include <sstream>

namespace df::graph {

namespace {

std::string escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

std::string render(const Dag& dag, const Numbering* numbering) {
  std::ostringstream out;
  out << "digraph deltaflow {\n  rankdir=TB;\n";
  for (VertexId v = 0; v < dag.vertex_count(); ++v) {
    out << "  n" << v << " [label=\"" << escape(dag.name(v));
    if (numbering != nullptr) {
      out << "\\n#" << numbering->index_of[v];
    }
    out << "\"";
    if (dag.is_source(v)) {
      out << ", shape=invtriangle";
    } else if (dag.is_sink(v)) {
      out << ", shape=doublecircle";
    }
    out << "];\n";
  }
  for (const Edge& e : dag.edges()) {
    out << "  n" << e.from << " -> n" << e.to << " [label=\""
        << e.from_port << ":" << e.to_port << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace

std::string to_dot(const Dag& dag) { return render(dag, nullptr); }

std::string to_dot(const Dag& dag, const Numbering& numbering) {
  return render(dag, &numbering);
}

}  // namespace df::graph
