#include "graph/generators.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace df::graph {

namespace {

std::string vname(std::uint32_t i) { return "v" + std::to_string(i); }

}  // namespace

Dag paper_figure2() {
  Dag dag;
  for (std::uint32_t i = 1; i <= 7; ++i) {
    dag.add_vertex(vname(i));
  }
  const auto v = [&](std::uint32_t i) { return dag.vertex(vname(i)); };
  dag.add_edge(v(2), 0, v(4), 0);
  dag.add_edge(v(3), 0, v(5), 0);
  dag.add_edge(v(5), 0, v(6), 0);
  dag.add_edge(v(4), 0, v(7), 0);
  dag.add_edge(v(6), 0, v(7), 1);
  return dag;
}

std::vector<std::uint32_t> paper_figure2a_indices() {
  // Figure 2(a) transposes the indices of the two middle vertices: the
  // vertex numbered 4 in (b) becomes 5 in (a) and vice versa.
  return {1, 2, 3, 5, 4, 6, 7};
}

Dag paper_figure3() {
  Dag dag;
  for (std::uint32_t i = 1; i <= 6; ++i) {
    dag.add_vertex(vname(i));
  }
  const auto v = [&](std::uint32_t i) { return dag.vertex(vname(i)); };
  dag.add_edge(v(1), 0, v(3), 0);
  dag.add_edge(v(2), 0, v(3), 1);
  dag.add_edge(v(2), 0, v(4), 0);
  dag.add_edge(v(3), 0, v(5), 0);
  dag.add_edge(v(4), 0, v(5), 1);
  dag.add_edge(v(4), 0, v(6), 0);
  return dag;
}

Dag chain(std::uint32_t length) {
  DF_CHECK(length >= 1, "chain needs at least one vertex");
  Dag dag;
  for (std::uint32_t i = 1; i <= length; ++i) {
    dag.add_vertex(vname(i));
  }
  for (std::uint32_t i = 1; i < length; ++i) {
    dag.add_edge(i - 1, 0, i, 0);
  }
  return dag;
}

Dag diamond(std::uint32_t width) {
  DF_CHECK(width >= 1, "diamond needs at least one middle vertex");
  Dag dag;
  const VertexId source = dag.add_vertex("source");
  std::vector<VertexId> middle;
  middle.reserve(width);
  for (std::uint32_t i = 0; i < width; ++i) {
    middle.push_back(dag.add_vertex("mid" + std::to_string(i)));
  }
  const VertexId sink = dag.add_vertex("sink");
  for (std::uint32_t i = 0; i < width; ++i) {
    dag.add_edge(source, 0, middle[i], 0);
    dag.add_edge(middle[i], 0, sink, static_cast<Port>(i));
  }
  return dag;
}

Dag layered(std::uint32_t layers, std::uint32_t width, std::uint32_t fan_in,
            support::Rng& rng) {
  DF_CHECK(layers >= 1 && width >= 1, "layered graph needs positive shape");
  Dag dag;
  std::vector<std::vector<VertexId>> layer_ids(layers);
  for (std::uint32_t l = 0; l < layers; ++l) {
    for (std::uint32_t i = 0; i < width; ++i) {
      layer_ids[l].push_back(
          dag.add_vertex("L" + std::to_string(l) + "_" + std::to_string(i)));
    }
  }
  const std::uint32_t effective_fan_in = std::min(fan_in, width);
  for (std::uint32_t l = 1; l < layers; ++l) {
    for (const VertexId v : layer_ids[l]) {
      // Choose distinct predecessors from the previous layer.
      std::vector<VertexId> candidates = layer_ids[l - 1];
      rng.shuffle(candidates);
      for (std::uint32_t k = 0; k < effective_fan_in; ++k) {
        dag.add_edge(candidates[k], 0, v, static_cast<Port>(k));
      }
    }
  }
  return dag;
}

Dag binary_in_tree(std::uint32_t depth) {
  DF_CHECK(depth >= 1, "tree depth must be positive");
  Dag dag;
  // Levels from leaves (level 0) to root; leaves are sources.
  std::vector<std::vector<VertexId>> levels(depth);
  const std::uint32_t leaf_count = 1U << (depth - 1);
  for (std::uint32_t i = 0; i < leaf_count; ++i) {
    levels[0].push_back(dag.add_vertex("leaf" + std::to_string(i)));
  }
  for (std::uint32_t l = 1; l < depth; ++l) {
    const std::uint32_t count = leaf_count >> l;
    for (std::uint32_t i = 0; i < count; ++i) {
      const VertexId v =
          dag.add_vertex("n" + std::to_string(l) + "_" + std::to_string(i));
      dag.add_edge(levels[l - 1][2 * i], 0, v, 0);
      dag.add_edge(levels[l - 1][2 * i + 1], 0, v, 1);
      levels[l].push_back(v);
    }
  }
  return dag;
}

Dag binary_out_tree(std::uint32_t depth) {
  DF_CHECK(depth >= 1, "tree depth must be positive");
  Dag dag;
  std::vector<std::vector<VertexId>> levels(depth);
  levels[0].push_back(dag.add_vertex("root"));
  for (std::uint32_t l = 1; l < depth; ++l) {
    const std::uint32_t count = 1U << l;
    for (std::uint32_t i = 0; i < count; ++i) {
      const VertexId v =
          dag.add_vertex("n" + std::to_string(l) + "_" + std::to_string(i));
      dag.add_edge(levels[l - 1][i / 2], 0, v, 0);
      levels[l].push_back(v);
    }
  }
  return dag;
}

Dag random_dag(std::uint32_t n, double edge_probability, support::Rng& rng) {
  DF_CHECK(n >= 1, "random DAG needs at least one vertex");
  DF_CHECK(edge_probability >= 0.0 && edge_probability <= 1.0,
           "edge probability out of range");
  Dag dag;
  for (std::uint32_t i = 0; i < n; ++i) {
    dag.add_vertex(vname(i + 1));
  }
  // A random permutation serves as the topological order.
  std::vector<VertexId> order(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  rng.shuffle(order);
  for (std::uint32_t j = 1; j < n; ++j) {
    Port next_port = 0;
    for (std::uint32_t i = 0; i < j; ++i) {
      if (rng.next_bernoulli(edge_probability)) {
        dag.add_edge(order[i], 0, order[j], next_port++);
      }
    }
  }
  return dag;
}

Dag figure1_style_graph(support::Rng& rng) {
  // 3 + 3 + 3 + 1 = 10 vertices, as in the paper's Figure 1 illustration.
  Dag dag = layered(3, 3, 2, rng);
  const VertexId sink = dag.add_vertex("sink");
  dag.add_edge(dag.vertex("L2_0"), 0, sink, 0);
  dag.add_edge(dag.vertex("L2_1"), 0, sink, 1);
  dag.add_edge(dag.vertex("L2_2"), 0, sink, 2);
  return dag;
}

}  // namespace df::graph
