#include "graph/numbering.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"

namespace df::graph {

namespace {

/// Computes m[0..N] from release indices: m(v) = |{w : r(w) <= v}|.
std::vector<std::uint32_t> compute_m(const std::vector<std::uint32_t>& release,
                                     std::uint32_t n) {
  std::vector<std::uint32_t> histogram(n + 1, 0);
  for (const std::uint32_t r : release) {
    ++histogram[r];
  }
  std::vector<std::uint32_t> m(n + 1, 0);
  std::uint32_t running = 0;
  for (std::uint32_t v = 0; v <= n; ++v) {
    running += histogram[v];
    m[v] = running;
  }
  return m;
}

}  // namespace

std::vector<std::uint32_t> release_indices(const Dag& dag,
                                           const Numbering& numbering) {
  std::vector<std::uint32_t> release(dag.vertex_count(), 0);
  for (VertexId v = 0; v < dag.vertex_count(); ++v) {
    for (const Edge& e : dag.in_edges(v)) {
      release[v] = std::max(release[v], numbering.index_of[e.from]);
    }
  }
  return release;
}

Numbering compute_satisfactory_numbering(const Dag& dag) {
  dag.validate();
  const auto n = static_cast<std::uint32_t>(dag.vertex_count());

  Numbering numbering;
  numbering.index_of.assign(n, 0);
  numbering.vertex_at.assign(n + 1, 0);

  // Frontier of vertices whose predecessors are all numbered, keyed by
  // (release index, original id) so the emitted releases are non-decreasing
  // and ties are deterministic.
  using Entry = std::pair<std::uint32_t, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  std::vector<std::size_t> unnumbered_preds(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    unnumbered_preds[v] = dag.in_degree(v);
    if (unnumbered_preds[v] == 0) {
      frontier.emplace(0U, v);
    }
  }

  std::uint32_t next_index = 0;
  std::uint32_t last_release = 0;
  while (!frontier.empty()) {
    const auto [release, v] = frontier.top();
    frontier.pop();
    DF_CHECK(release >= last_release,
             "greedy numbering emitted a decreasing release");
    last_release = release;
    ++next_index;
    numbering.index_of[v] = next_index;
    numbering.vertex_at[next_index] = v;
    for (const Edge& e : dag.out_edges(v)) {
      if (--unnumbered_preds[e.to] == 0) {
        // The successor's last-numbered predecessor is v, so its release is
        // exactly next_index.
        frontier.emplace(next_index, e.to);
      }
    }
  }
  DF_CHECK(next_index == n, "graph has a cycle; numbering incomplete");

  numbering.m = compute_m(release_indices(dag, numbering), n);
  verify_numbering(dag, numbering);
  return numbering;
}

Numbering make_numbering(const Dag& dag,
                         const std::vector<std::uint32_t>& index_of) {
  const auto n = static_cast<std::uint32_t>(dag.vertex_count());
  DF_CHECK(index_of.size() == n, "index_of size mismatch");

  Numbering numbering;
  numbering.index_of = index_of;
  numbering.vertex_at.assign(n + 1, 0);
  std::vector<bool> seen(n + 1, false);
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t i = index_of[v];
    DF_CHECK(i >= 1 && i <= n, "index ", i, " out of range 1..", n);
    DF_CHECK(!seen[i], "duplicate index ", i);
    seen[i] = true;
    numbering.vertex_at[i] = v;
  }
  numbering.m = compute_m(release_indices(dag, numbering), n);
  return numbering;
}

std::set<std::uint32_t> compute_S(const Dag& dag, const Numbering& numbering,
                                  std::uint32_t v) {
  // Direct evaluation of eqn (1): w is in S(v) iff every predecessor u of w
  // satisfies index(u) <= v.
  std::set<std::uint32_t> result;
  for (VertexId w = 0; w < dag.vertex_count(); ++w) {
    bool all_preds_low = true;
    for (const Edge& e : dag.in_edges(w)) {
      if (numbering.index_of[e.from] > v) {
        all_preds_low = false;
        break;
      }
    }
    if (all_preds_low) {
      result.insert(numbering.index_of[w]);
    }
  }
  return result;
}

bool is_topological(const Dag& dag, const Numbering& numbering) {
  for (const Edge& e : dag.edges()) {
    if (numbering.index_of[e.from] >= numbering.index_of[e.to]) {
      return false;
    }
  }
  return true;
}

bool is_satisfactory(const Dag& dag, const Numbering& numbering) {
  if (!is_topological(dag, numbering)) {
    return false;
  }
  // Prefix condition <=> release indices are non-decreasing in index order.
  const auto release = release_indices(dag, numbering);
  std::uint32_t previous = 0;
  for (std::uint32_t i = 1; i <= dag.vertex_count(); ++i) {
    const std::uint32_t r = release[numbering.vertex_at[i]];
    if (r < previous) {
      return false;
    }
    previous = r;
  }
  return true;
}

void verify_numbering(const Dag& dag, const Numbering& numbering) {
  const auto n = static_cast<std::uint32_t>(dag.vertex_count());
  DF_CHECK(is_topological(dag, numbering), "numbering is not topological");
  DF_CHECK(is_satisfactory(dag, numbering),
           "numbering violates the prefix restriction");
  DF_CHECK(numbering.m.size() == n + 1, "m has wrong length");
  // Eqn (2): monotone.
  for (std::uint32_t v = 1; v <= n; ++v) {
    DF_CHECK(numbering.m[v - 1] <= numbering.m[v], "m not monotone at ", v);
  }
  // Eqn (3): v < m(v) for 1 <= v < N.
  for (std::uint32_t v = 1; v < n; ++v) {
    DF_CHECK(v < numbering.m[v], "m(", v, ") = ", numbering.m[v],
             " violates v < m(v)");
  }
  // Eqn (4): m(N) = N.
  DF_CHECK(numbering.m[n] == n, "m(N) != N");
}

}  // namespace df::graph
