// Sequential phase-at-a-time reference executor.
//
// "One solution is to require the data fusion engine to complete execution
// of one phase before initiating execution of the next phase" (paper
// section 2). This executor does exactly that, with Δ-semantics: within a
// phase it visits vertices in increasing internal index (a topological
// order), executing sources and any vertex with pending messages.
//
// It is the correctness oracle: the parallel engine is serializable iff its
// canonical sink stream equals this executor's for every program and feed.
#pragma once

#include "core/executor.hpp"

namespace df::baseline {

class SequentialExecutor final : public core::Executor {
 public:
  explicit SequentialExecutor(const core::Program& program);

  void run(event::PhaseId num_phases, core::PhaseFeed* feed) override;

  const core::SinkStore& sinks() const override { return sinks_; }
  core::ExecStats stats() const override { return stats_; }

 private:
  core::ProgramInstance instance_;
  core::SinkStore sinks_;
  core::ExecStats stats_;
};

}  // namespace df::baseline
