#include "baseline/eager.hpp"

#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace df::baseline {

EagerExecutor::EagerExecutor(const core::Program& program)
    : instance_(program) {
  last_output_.resize(instance_.n() + 1);
  for (std::uint32_t v = 1; v <= instance_.n(); ++v) {
    last_output_[v].resize(instance_.out_port_count(v));
  }
}

void EagerExecutor::run(event::PhaseId num_phases, core::PhaseFeed* feed) {
  core::NullFeed null_feed;
  core::PhaseFeed& source = feed != nullptr ? *feed : null_feed;
  const std::uint32_t n = instance_.n();

  support::Stopwatch wall;
  std::vector<event::InputBundle> pending(n + 1);

  for (event::PhaseId p = 1; p <= num_phases; ++p) {
    for (const event::ExternalEvent& ev : source.events_for(p)) {
      const std::uint32_t index = instance_.internal_index(ev.vertex);
      DF_CHECK(instance_.is_source(index),
               "external events may only target source vertices");
      pending[index].push_back(event::Message{ev.port, ev.value});
    }

    for (std::uint32_t v = 1; v <= n; ++v) {
      // Option (1) of the paper: every vertex computes every phase.
      const event::InputBundle bundle = std::move(pending[v]);
      pending[v] = event::InputBundle{};

      support::Stopwatch compute_timer;
      core::ExecutionResult result =
          core::execute_vertex(instance_, v, p, bundle);
      stats_.compute_ns += compute_timer.elapsed_ns();
      ++stats_.executed_pairs;

      // Record fresh emissions per port (the last one wins), then forward
      // *every* known output on *every* edge — a message on every output
      // for every phase.
      std::vector<std::optional<event::Value>>& outputs = last_output_[v];
      for (const event::Message& msg : result.emissions) {
        if (msg.port < outputs.size()) {
          outputs[msg.port] = msg.value;
        }
      }
      for (std::size_t port = 0; port < outputs.size(); ++port) {
        if (!outputs[port].has_value()) {
          continue;  // nothing ever emitted on this port yet
        }
        for (const core::Route& r :
             instance_.routes(v, static_cast<graph::Port>(port))) {
          pending[r.to_index].push_back(
              event::Message{r.to_port, *outputs[port]});
          ++stats_.messages_delivered;
        }
      }
      stats_.sink_records += result.sink_records.size();
      sinks_.record_batch(std::move(result.sink_records));
    }
    ++stats_.phases_completed;
  }
  stats_.wall_seconds = wall.elapsed_s();
  stats_.max_inflight_phases = 1;
  stats_.mean_inflight_phases = 1.0;
}

}  // namespace df::baseline
