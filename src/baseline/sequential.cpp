#include "baseline/sequential.hpp"

#include <optional>

#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace df::baseline {

SequentialExecutor::SequentialExecutor(const core::Program& program)
    : instance_(program) {}

void SequentialExecutor::run(event::PhaseId num_phases,
                             core::PhaseFeed* feed) {
  core::NullFeed null_feed;
  core::PhaseFeed& source = feed != nullptr ? *feed : null_feed;
  const std::uint32_t n = instance_.n();

  support::Stopwatch wall;
  // Messages waiting for each vertex within the current phase. Edges go
  // from lower to higher internal index, so a single ascending sweep
  // delivers everything before it is consumed.
  std::vector<std::optional<event::InputBundle>> pending(n + 1);

  for (event::PhaseId p = 1; p <= num_phases; ++p) {
    for (const event::ExternalEvent& ev : source.events_for(p)) {
      const std::uint32_t index = instance_.internal_index(ev.vertex);
      DF_CHECK(instance_.is_source(index),
               "external events may only target source vertices");
      if (!pending[index].has_value()) {
        pending[index].emplace();
      }
      pending[index]->push_back(event::Message{ev.port, ev.value});
    }

    for (std::uint32_t v = 1; v <= n; ++v) {
      const bool is_source = instance_.is_source(v);
      if (!is_source && !pending[v].has_value()) {
        continue;  // no input changed: execution unnecessary this phase
      }
      const event::InputBundle bundle =
          pending[v].has_value() ? std::move(*pending[v])
                                 : event::InputBundle{};
      pending[v].reset();

      support::Stopwatch compute_timer;
      core::ExecutionResult result =
          core::execute_vertex(instance_, v, p, bundle);
      stats_.compute_ns += compute_timer.elapsed_ns();
      ++stats_.executed_pairs;

      for (core::ExecutionResult::Delivery& d : result.deliveries) {
        DF_CHECK(d.to_index > v, "delivery to an already-visited vertex");
        if (!pending[d.to_index].has_value()) {
          pending[d.to_index].emplace();
        }
        pending[d.to_index]->push_back(
            event::Message{d.to_port, std::move(d.value)});
        ++stats_.messages_delivered;
      }
      stats_.sink_records += result.sink_records.size();
      sinks_.record_batch(std::move(result.sink_records));
    }
    ++stats_.phases_completed;
  }
  stats_.wall_seconds = wall.elapsed_s();
  stats_.max_inflight_phases = 1;
  stats_.mean_inflight_phases = 1.0;
}

}  // namespace df::baseline
