// Barrier-synchronized parallel baseline: one phase at a time, parallelism
// only *within* a phase.
//
// This is the natural parallelization of the sequential solution the paper
// rejects as less efficient: vertices of one topological level execute in
// parallel, a barrier separates levels, and a phase must drain completely
// before the next begins. Comparing it against core::Engine isolates the
// benefit of the paper's cross-phase pipelining (bench_pipeline,
// bench_engines).
#pragma once

#include <cstdint>
#include <vector>

#include "core/executor.hpp"

namespace df::baseline {

class LockstepExecutor final : public core::Executor {
 public:
  LockstepExecutor(const core::Program& program, std::size_t threads);

  void run(event::PhaseId num_phases, core::PhaseFeed* feed) override;

  const core::SinkStore& sinks() const override { return sinks_; }
  core::ExecStats stats() const override { return stats_; }

 private:
  core::ProgramInstance instance_;
  std::size_t threads_;
  core::SinkStore sinks_;
  core::ExecStats stats_;
  /// Internal indices grouped by topological level (level of a source is 0).
  std::vector<std::vector<std::uint32_t>> levels_;
};

}  // namespace df::baseline
