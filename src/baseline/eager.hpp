// The "obvious solution" the paper rejects (section 3.1): every vertex
// receives a message on every input during every phase, computes every
// phase, and sends a message on every output every phase.
//
// Execution is sequential phase-at-a-time; the point of this baseline is
// the *message and computation counts*, which bench_sparsity compares
// against Δ-execution across anomaly rates (the paper's one-in-a-million
// money-laundering argument: option (2) generates a millionth of the events
// of option (1)).
//
// Semantics note: downstream modules observe an input message every phase
// (has_input is always true once an upstream value exists), so modules that
// treat message arrival as "change" recompute every phase — exactly the
// inefficiency the paper describes. Values still match Δ-execution for
// modules that are pure functions of their latest inputs; stateful modules
// that count message arrivals will diverge, which is the paper's point.
#pragma once

#include <optional>
#include <vector>

#include "core/executor.hpp"

namespace df::baseline {

class EagerExecutor final : public core::Executor {
 public:
  explicit EagerExecutor(const core::Program& program);

  void run(event::PhaseId num_phases, core::PhaseFeed* feed) override;

  const core::SinkStore& sinks() const override { return sinks_; }
  core::ExecStats stats() const override { return stats_; }

 private:
  core::ProgramInstance instance_;
  core::SinkStore sinks_;
  core::ExecStats stats_;
  /// Last value emitted per (vertex, out port); forwarded every phase.
  std::vector<std::vector<std::optional<event::Value>>> last_output_;
};

}  // namespace df::baseline
