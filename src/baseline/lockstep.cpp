#include "baseline/lockstep.hpp"

#include <atomic>
#include <optional>

#include "concurrency/thread_pool.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace df::baseline {

LockstepExecutor::LockstepExecutor(const core::Program& program,
                                   std::size_t threads)
    : instance_(program), threads_(threads) {
  DF_CHECK(threads >= 1, "lockstep executor needs at least one thread");
  // Compute topological levels over the internal index space.
  const std::uint32_t n = instance_.n();
  std::vector<std::uint32_t> level(n + 1, 0);
  for (std::uint32_t v = 1; v <= n; ++v) {
    for (std::size_t port = 0; port < instance_.out_port_count(v); ++port) {
      for (const core::Route& r :
           instance_.routes(v, static_cast<graph::Port>(port))) {
        level[r.to_index] = std::max(level[r.to_index], level[v] + 1);
      }
    }
  }
  std::uint32_t depth = 0;
  for (std::uint32_t v = 1; v <= n; ++v) {
    depth = std::max(depth, level[v] + 1);
  }
  levels_.resize(depth);
  for (std::uint32_t v = 1; v <= n; ++v) {
    levels_[level[v]].push_back(v);
  }
}

void LockstepExecutor::run(event::PhaseId num_phases, core::PhaseFeed* feed) {
  core::NullFeed null_feed;
  core::PhaseFeed& source = feed != nullptr ? *feed : null_feed;
  const std::uint32_t n = instance_.n();

  support::Stopwatch wall;
  conc::ThreadPool pool(threads_);
  std::vector<std::optional<event::InputBundle>> pending(n + 1);
  std::vector<core::ExecutionResult> results(n + 1);

  std::atomic<std::uint64_t> compute_ns{0};
  std::atomic<std::uint64_t> executed{0};

  for (event::PhaseId p = 1; p <= num_phases; ++p) {
    for (const event::ExternalEvent& ev : source.events_for(p)) {
      const std::uint32_t index = instance_.internal_index(ev.vertex);
      DF_CHECK(instance_.is_source(index),
               "external events may only target source vertices");
      if (!pending[index].has_value()) {
        pending[index].emplace();
      }
      pending[index]->push_back(event::Message{ev.port, ev.value});
    }

    for (const std::vector<std::uint32_t>& level : levels_) {
      // Gather the executable vertices of this level.
      std::vector<std::uint32_t> work;
      for (const std::uint32_t v : level) {
        if (instance_.is_source(v) || pending[v].has_value()) {
          work.push_back(v);
        }
      }
      if (work.empty()) {
        continue;
      }

      // Execute the level in parallel; results land in per-vertex slots.
      std::atomic<std::size_t> cursor{0};
      pool.run_on_all([&](std::size_t) {
        for (;;) {
          const std::size_t i = cursor.fetch_add(1);
          if (i >= work.size()) {
            return;
          }
          const std::uint32_t v = work[i];
          const event::InputBundle bundle =
              pending[v].has_value() ? std::move(*pending[v])
                                     : event::InputBundle{};
          pending[v].reset();
          support::Stopwatch compute_timer;
          results[v] = core::execute_vertex(instance_, v, p, bundle);
          compute_ns.fetch_add(compute_timer.elapsed_ns(),
                               std::memory_order_relaxed);
          executed.fetch_add(1, std::memory_order_relaxed);
        }
      });

      // Route sequentially (barrier already passed): deterministic order.
      for (const std::uint32_t v : work) {
        core::ExecutionResult& result = results[v];
        for (core::ExecutionResult::Delivery& d : result.deliveries) {
          if (!pending[d.to_index].has_value()) {
            pending[d.to_index].emplace();
          }
          pending[d.to_index]->push_back(
              event::Message{d.to_port, std::move(d.value)});
          ++stats_.messages_delivered;
        }
        stats_.sink_records += result.sink_records.size();
        sinks_.record_batch(std::move(result.sink_records));
        result = core::ExecutionResult{};
      }
    }
    ++stats_.phases_completed;
  }
  stats_.executed_pairs = executed.load();
  stats_.compute_ns = compute_ns.load();
  stats_.wall_seconds = wall.elapsed_s();
  stats_.max_inflight_phases = 1;
  stats_.mean_inflight_phases = 1.0;
}

}  // namespace df::baseline
