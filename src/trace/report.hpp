// Human-readable reporting of executor statistics, shared by bench binaries
// and examples.
#pragma once

#include <string>

#include "core/executor.hpp"

namespace df::trace {

/// One-paragraph stats rendering (pairs, messages, phases, time split).
std::string render_stats(const std::string& label,
                         const core::ExecStats& stats);

/// Machine environment line printed at the top of every bench: hardware
/// concurrency and build mode, so EXPERIMENTS.md can qualify speedups.
std::string machine_summary();

}  // namespace df::trace
