// Set-membership tracing (the executable form of the paper's Figure 3).
//
// A Tracer observes every scheduler transition and stores bounded history of
// snapshots. render_step() prints one step in the style of Figure 3: for
// each active phase, the vertices that are in no set, partial only, full
// only, or full-and-ready — the paper's circles, diamonds, octagons and
// squares.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "concurrency/annotations.hpp"
#include "core/observer.hpp"

namespace df::trace {

class Tracer final : public core::SchedulerObserver {
 public:
  struct Step {
    core::SchedulerObserver::Transition transition;
    std::uint32_t vertex;  // 0 for phase starts
    event::PhaseId phase;
    core::Scheduler::Snapshot snapshot;
  };

  /// Keeps at most `max_steps` steps (older steps are dropped).
  explicit Tracer(std::size_t max_steps = 4096);

  void on_transition(Transition transition, std::uint32_t vertex,
                     event::PhaseId phase,
                     const core::Scheduler::Snapshot& snapshot) override;

  std::vector<Step> steps() const;
  std::size_t step_count() const;

  /// Renders one step as text, naming vertices 1..n (internal indices).
  /// `n` is the vertex count of the traced program.
  static std::string render_step(const Step& step, std::uint32_t n);

 private:
  mutable conc::Mutex mutex_;
  std::size_t max_steps_;  // immutable after construction
  std::vector<Step> steps_ DF_GUARDED_BY(mutex_);
  std::size_t dropped_ DF_GUARDED_BY(mutex_) = 0;
};

}  // namespace df::trace
