#include "trace/report.hpp"

#include <sstream>
#include <thread>

#include "support/table.hpp"

namespace df::trace {

std::string render_stats(const std::string& label,
                         const core::ExecStats& stats) {
  std::ostringstream out;
  out << label << ": " << stats.executed_pairs << " pairs, "
      << stats.messages_delivered << " messages, " << stats.sink_records
      << " sink records, " << stats.phases_completed << " phases in "
      << support::Table::num(stats.wall_seconds * 1e3, 2) << " ms ("
      << support::Table::num(stats.pairs_per_second(), 0) << " pairs/s)";
  const double total_ns =
      static_cast<double>(stats.compute_ns + stats.bookkeeping_ns);
  if (total_ns > 0.0) {
    out << "; compute/bookkeeping = "
        << support::Table::num(
               100.0 * static_cast<double>(stats.compute_ns) / total_ns, 1)
        << "%/"
        << support::Table::num(
               100.0 * static_cast<double>(stats.bookkeeping_ns) / total_ns,
               1)
        << "%";
  }
  if (stats.max_inflight_phases > 1) {
    out << "; max in-flight phases " << stats.max_inflight_phases;
    if (stats.mean_inflight_phases > 0.0) {
      out << " (mean " << support::Table::num(stats.mean_inflight_phases, 2)
          << ")";
    }
  }
  return out.str();
}

std::string machine_summary() {
  std::ostringstream out;
  out << "machine: hw_concurrency=" << std::thread::hardware_concurrency();
#ifdef NDEBUG
  out << ", build=release";
#else
  out << ", build=debug(assertions on)";
#endif
  return out.str();
}

}  // namespace df::trace
