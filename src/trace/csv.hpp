// CSV export of sink streams — the "input/output units outside the data
// fusion system" read side, in a form spreadsheets and plotting scripts can
// consume directly.
#pragma once

#include <iosfwd>
#include <string>

#include "core/program.hpp"
#include "core/sink_store.hpp"

namespace df::trace {

/// Writes `phase,vertex,name,port,type,value` rows in canonical order.
/// Values render as: bool -> true/false, numbers -> decimal, strings ->
/// double-quoted with embedded quotes doubled, vectors -> quoted
/// semicolon-separated list, empty -> blank.
void write_sinks_csv(std::ostream& out, const core::SinkStore& sinks,
                     const core::Program& program);

/// Convenience: renders to a string (used by tests and small tools).
std::string sinks_to_csv(const core::SinkStore& sinks,
                         const core::Program& program);

/// Writes to a file path; DF_CHECKs that the file opened.
void write_sinks_csv_file(const std::string& path,
                          const core::SinkStore& sinks,
                          const core::Program& program);

}  // namespace df::trace
