// Serializability checking (paper section 2: "though modules are executed
// concurrently, the logical effect must be the same as executing only one
// phase at a time in serial order all the way from the sources to the
// sinks").
//
// Operationally: run any executor and the sequential reference over the same
// Program and feed; the execution is serializable iff the canonical sink
// streams are identical.
#pragma once

#include <string>
#include <vector>

#include "core/executor.hpp"
#include "core/program.hpp"

namespace df::trace {

struct SerializabilityReport {
  bool equivalent = false;
  std::size_t reference_records = 0;
  std::size_t candidate_records = 0;
  /// First few mismatching records rendered for diagnostics.
  std::vector<std::string> differences;

  std::string summary() const;
};

/// Compares two sink stores record-for-record in canonical order.
SerializabilityReport compare_sinks(const core::SinkStore& reference,
                                    const core::SinkStore& candidate,
                                    std::size_t max_differences = 8);

/// Runs `candidate` and a fresh SequentialExecutor over the same program and
/// per-phase feed batches, and compares sink streams. The feed is replayed
/// from `batches` so both executors see identical external events.
SerializabilityReport check_against_sequential(
    const core::Program& program, core::Executor& candidate,
    event::PhaseId num_phases,
    const std::vector<std::vector<event::ExternalEvent>>& batches = {});

}  // namespace df::trace
