#include "trace/tracer.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace df::trace {

Tracer::Tracer(std::size_t max_steps) : max_steps_(max_steps) {}

void Tracer::on_transition(Transition transition, std::uint32_t vertex,
                           event::PhaseId phase,
                           const core::Scheduler::Snapshot& snapshot) {
  conc::MutexLock lock(mutex_);
  if (steps_.size() >= max_steps_) {
    steps_.erase(steps_.begin());
    ++dropped_;
  }
  steps_.push_back(Step{transition, vertex, phase, snapshot});
}

std::vector<Tracer::Step> Tracer::steps() const {
  conc::MutexLock lock(mutex_);
  return steps_;
}

std::size_t Tracer::step_count() const {
  conc::MutexLock lock(mutex_);
  return steps_.size();
}

std::string Tracer::render_step(const Step& step, std::uint32_t n) {
  using Pair = core::Scheduler::Snapshot::Pair;
  std::ostringstream out;
  if (step.transition == core::SchedulerObserver::Transition::kPhaseStarted) {
    out << "phase " << step.phase << " initiated\n";
  } else {
    out << "(" << step.vertex << ", " << step.phase << ") executed\n";
  }

  const auto contains = [](const std::vector<Pair>& pairs, std::uint32_t v,
                           event::PhaseId p) {
    return std::any_of(pairs.begin(), pairs.end(), [&](const Pair& pair) {
      return pair.vertex == v && pair.phase == p;
    });
  };

  for (const auto& [phase, x] : step.snapshot.x) {
    out << "  phase " << phase << " (x=" << x << "):";
    for (std::uint32_t v = 1; v <= n; ++v) {
      // Figure 3 legend: # none, <> partial, (8) full, [] full+ready.
      if (contains(step.snapshot.ready, v, phase)) {
        out << " [" << v << "]";
      } else if (contains(step.snapshot.full, v, phase)) {
        out << " (" << v << ")";
      } else if (contains(step.snapshot.partial, v, phase)) {
        out << " <" << v << ">";
      } else {
        out << "  " << v << " ";
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace df::trace
