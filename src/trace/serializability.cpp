#include "trace/serializability.hpp"

#include <sstream>

#include "baseline/sequential.hpp"

namespace df::trace {

std::string SerializabilityReport::summary() const {
  std::ostringstream out;
  out << (equivalent ? "EQUIVALENT" : "DIVERGENT") << " (reference "
      << reference_records << " records, candidate " << candidate_records
      << " records)";
  for (const std::string& diff : differences) {
    out << "\n  " << diff;
  }
  return out.str();
}

SerializabilityReport compare_sinks(const core::SinkStore& reference,
                                    const core::SinkStore& candidate,
                                    std::size_t max_differences) {
  SerializabilityReport report;
  const auto ref = reference.canonical();
  const auto cand = candidate.canonical();
  report.reference_records = ref.size();
  report.candidate_records = cand.size();
  report.equivalent = true;

  const std::size_t common = std::min(ref.size(), cand.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (!(ref[i] == cand[i])) {
      report.equivalent = false;
      if (report.differences.size() < max_differences) {
        report.differences.push_back("at #" + std::to_string(i) +
                                     ": reference " + to_string(ref[i]) +
                                     " vs candidate " + to_string(cand[i]));
      }
    }
  }
  if (ref.size() != cand.size()) {
    report.equivalent = false;
    report.differences.push_back(
        "record count mismatch: " + std::to_string(ref.size()) + " vs " +
        std::to_string(cand.size()));
  }
  return report;
}

SerializabilityReport check_against_sequential(
    const core::Program& program, core::Executor& candidate,
    event::PhaseId num_phases,
    const std::vector<std::vector<event::ExternalEvent>>& batches) {
  baseline::SequentialExecutor reference(program);
  core::VectorFeed reference_feed(batches);
  reference.run(num_phases, &reference_feed);

  core::VectorFeed candidate_feed(batches);
  candidate.run(num_phases, &candidate_feed);

  return compare_sinks(reference.sinks(), candidate.sinks());
}

}  // namespace df::trace
