#include "trace/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "support/check.hpp"
#include "support/table.hpp"

namespace df::trace {

namespace {

std::string csv_quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

struct ValueCsv {
  const char* type;
  std::string text;
};

ValueCsv render_value(const event::Value& value) {
  if (value.is_empty()) {
    return {"empty", ""};
  }
  if (value.is_bool()) {
    return {"bool", value.as_bool() ? "true" : "false"};
  }
  if (value.is_int()) {
    return {"int", std::to_string(value.as_int())};
  }
  if (value.is_double()) {
    return {"double", support::Table::num(value.as_double(), 9)};
  }
  if (value.is_string()) {
    return {"string", csv_quote(value.as_string())};
  }
  std::string joined;
  for (const double x : value.as_vector()) {
    if (!joined.empty()) {
      joined += ';';
    }
    joined += support::Table::num(x, 9);
  }
  return {"vector", csv_quote(joined)};
}

}  // namespace

void write_sinks_csv(std::ostream& out, const core::SinkStore& sinks,
                     const core::Program& program) {
  out << "phase,vertex,name,port,type,value\n";
  for (const core::SinkRecord& record : sinks.canonical()) {
    const ValueCsv value = render_value(record.value);
    out << record.phase << ',' << record.vertex << ','
        << csv_quote(program.dag.name(record.vertex)) << ',' << record.port
        << ',' << value.type << ',' << value.text << '\n';
  }
}

std::string sinks_to_csv(const core::SinkStore& sinks,
                         const core::Program& program) {
  std::ostringstream out;
  write_sinks_csv(out, sinks, program);
  return out.str();
}

void write_sinks_csv_file(const std::string& path,
                          const core::SinkStore& sinks,
                          const core::Program& program) {
  std::ofstream out(path);
  DF_CHECK(out.good(), "cannot open '", path, "' for writing");
  write_sinks_csv(out, sinks, program);
}

}  // namespace df::trace
