// Per-worker parker: a one-permit binary semaphore with an adaptive
// spin-then-park policy (DESIGN.md, "Work-stealing dispatch").
//
// The work-stealing dispatch layer wakes workers *individually*: a
// producer that hands worker i a chunk calls exactly lane i's unpark(),
// instead of notify_all on a condvar every worker shares. The parker's
// one-permit ("sticky") semantics is what makes that race-free without a
// producer-side handshake:
//
//   * unpark() deposits a permit with one atomic exchange. If the target
//     is parked it is woken; if it is running, the permit is banked and
//     the target's *next* park() returns immediately.
//   * park() consumes a pending permit without blocking, else sleeps
//     until one arrives.
//
// So the classic lost-wakeup interleaving — consumer checks queues
// (empty), producer pushes + signals, consumer sleeps forever — cannot
// happen: the signal is the permit, the permit cannot be lost, and the
// woken worker re-checks its queues in its acquire loop. The cost is a
// possible spurious wakeup (a banked permit from work that was already
// consumed), which costs one extra sweep, never correctness.
//
// SpinBudget implements the adaptive spin-then-park policy: a worker
// spins (cpu_relax polls of its work sources) for a budget of iterations
// before parking. The budget doubles whenever spinning found work (work
// arrives quickly here — parking would pay two context switches per
// item) and halves whenever a spin round went to sleep anyway (the queue
// is genuinely idle — spinning just burns the core), clamped to
// [kMinSpins, kMaxSpins].
#pragma once

#include <atomic>
#include <cstdint>

#include "concurrency/annotations.hpp"
#include "support/check.hpp"

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <immintrin.h>
#endif

namespace df::conc {

/// One CPU-friendly busy-wait pulse (PAUSE / YIELD / nothing).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class Parker {
 public:
  Parker() = default;
  Parker(const Parker&) = delete;
  Parker& operator=(const Parker&) = delete;

  /// Blocks the calling thread until a permit is available, then consumes
  /// it. Returns immediately if unpark() already banked one. Only the
  /// owning worker calls park(); any thread may unpark().
  void park() {
    // Fast path: consume a banked permit without touching the mutex.
    std::uint32_t expected = kNotified;
    if (state_.compare_exchange_strong(expected, kEmpty,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      return;
    }
    UniqueLock lock(mutex_);
    expected = kEmpty;
    if (!state_.compare_exchange_strong(expected, kParked,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      // A permit landed between the fast path and the lock; consume it.
      DF_CHECK(expected == kNotified,
               "second thread parked on the same Parker");
      state_.store(kEmpty, std::memory_order_release);
      return;
    }
    // Explicit predicate loop over the (unguarded, atomic) state; the
    // unparker flips it to kNotified under this mutex, so the wait cannot
    // miss the transition.
    while (state_.load(std::memory_order_acquire) == kParked) {
      cv_.wait(lock);
    }
    state_.store(kEmpty, std::memory_order_release);  // consume the permit
  }

  /// Deposits one permit (idempotent while one is already banked) and
  /// wakes the owner if it is parked. Cheap when the owner is running:
  /// one uncontended exchange, no mutex, no syscall.
  void unpark() {
    const std::uint32_t prev =
        state_.exchange(kNotified, std::memory_order_acq_rel);
    if (prev == kParked) {
      // The owner is (or is about to be) in cv_.wait. Taking the mutex
      // before notifying closes the window where it has set kParked but
      // not yet entered wait(): once we hold the mutex the owner is
      // either inside wait() (the notify reaches it) or has re-checked
      // state_ under the mutex and seen kNotified (no notify owed).
      { MutexLock lock(mutex_); }
      cv_.notify_one();
    }
  }

 private:
  enum : std::uint32_t { kEmpty = 0, kNotified = 1, kParked = 2 };

  std::atomic<std::uint32_t> state_{kEmpty};
  Mutex mutex_;
  CondVar cv_;
};

/// Adaptive spin budget for the spin-then-park policy. Owner-thread only.
class SpinBudget {
 public:
  static constexpr std::uint32_t kMinSpins = 8;
  static constexpr std::uint32_t kMaxSpins = 512;

  /// Iterations to spend polling before parking this round.
  std::uint32_t budget() const { return budget_; }

  /// Spinning found work: arrivals are bursty-fast, spin longer next time.
  void spin_succeeded() {
    budget_ = budget_ * 2 > kMaxSpins ? kMaxSpins : budget_ * 2;
  }

  /// Spin exhausted and the worker parked: back off the wasted polling.
  void spin_failed() {
    budget_ = budget_ / 2 < kMinSpins ? kMinSpins : budget_ / 2;
  }

 private:
  std::uint32_t budget_ = 64;
};

}  // namespace df::conc
