#include "concurrency/thread_pool.hpp"

#include <latch>

#include "support/check.hpp"

namespace df::conc {

ThreadPool::ThreadPool(std::size_t worker_count) {
  DF_CHECK(worker_count > 0, "thread pool needs at least one worker");
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  tasks_.close();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  const bool accepted = tasks_.push(std::move(task));
  DF_CHECK(accepted, "submit on a destroyed thread pool");
}

void ThreadPool::run_on_all(const std::function<void(std::size_t)>& task) {
  std::latch done(static_cast<std::ptrdiff_t>(workers_.size()));
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    submit([&task, &done, i] {
      task(i);
      done.count_down();
    });
  }
  done.wait();
}

void ThreadPool::wait_idle() {
  UniqueLock lock(idle_mutex_);
  // Predicate reads only the atomic, so the lambda form is analysis-safe.
  idle_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::worker_main() {
  while (auto task = tasks_.pop()) {
    (*task)();
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      MutexLock lock(idle_mutex_);
      idle_cv_.notify_all();
    }
  }
}

void parallel_for_threads(std::size_t count,
                          const std::function<void(std::size_t)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads.emplace_back([&body, i] { body(i); });
  }
  for (auto& thread : threads) {
    thread.join();
  }
}

}  // namespace df::conc
