// Cache-line sharded counters for engine statistics.
//
// The engine counts executed pairs, delivered messages and enqueues from
// every worker thread; a single shared atomic would add contention to the
// very code paths the benchmarks measure, so counters are striped across
// cache lines and summed on read.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>

namespace df::conc {

class ShardedCounter {
 public:
  explicit ShardedCounter(std::size_t shards = 16);

  /// Adds `delta` to the shard chosen from the calling thread's identity.
  void add(std::uint64_t delta = 1);

  /// Sums all shards. Not linearizable with concurrent add()s, which is fine
  /// for statistics read after quiescence.
  std::uint64_t value() const;

  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
  };
  std::unique_ptr<Shard[]> shards_;
  std::size_t shard_count_;

  std::size_t shard_index() const;
};

/// RAII accumulator of nanoseconds into a ShardedCounter-backed total; used
/// to split worker time into "computation" vs "bookkeeping" (paper section 4
/// predicts near-linear speedup only when computation dominates).
class ScopedNanoTimer {
 public:
  explicit ScopedNanoTimer(ShardedCounter& sink);
  ~ScopedNanoTimer();

  ScopedNanoTimer(const ScopedNanoTimer&) = delete;
  ScopedNanoTimer& operator=(const ScopedNanoTimer&) = delete;

 private:
  ShardedCounter& sink_;
  std::uint64_t start_ns_;
};

}  // namespace df::conc
