// Single-producer single-consumer lock-free ring buffer.
//
// Used by the tracer: each worker thread records scheduler events into its
// own ring; the report aggregator drains them without perturbing the global
// lock the algorithm is built around.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "support/check.hpp"

namespace df::conc {

template <typename T>
class SpscRing {
 public:
  /// capacity must be a power of two (masking instead of modulo).
  explicit SpscRing(std::size_t capacity)
      : buffer_(capacity), mask_(capacity - 1) {
    DF_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0,
             "SPSC ring capacity must be a power of two >= 2");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full (the item is not stored).
  bool push(T item) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail == buffer_.size()) {
      return false;
    }
    buffer_[head & mask_] = std::move(item);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.
  std::optional<T> pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (head == tail) {
      return std::nullopt;
    }
    T item = std::move(buffer_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return item;
  }

  std::size_t size() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return buffer_.size(); }

 private:
  std::vector<T> buffer_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace df::conc
