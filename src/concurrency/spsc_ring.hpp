// Single-producer single-consumer lock-free ring buffer.
//
// Used by the tracer (each worker thread records scheduler events into its
// own ring; the report aggregator drains them) and by the engine's staged
// delivery rings (each worker stages finished-pair records; the current
// drainer applies them in batches — see DESIGN.md).
//
// "Single consumer" means *one consumer at a time*, not one consumer
// thread forever: the consumer role may migrate between threads provided
// the handoff happens through an acquire/release (or stronger) edge — the
// engine's `draining` flag exchange is exactly that. The same applies to
// the producer role.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "support/check.hpp"

namespace df::conc {

template <typename T>
class SpscRing {
 public:
  /// capacity must be a power of two (masking instead of modulo).
  explicit SpscRing(std::size_t capacity)
      : buffer_(capacity), mask_(capacity - 1) {
    DF_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0,
             "SPSC ring capacity must be a power of two >= 2");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full (the item is not stored).
  bool push(T item) { return try_push(item); }

  /// Producer side; moves from `item` only on success, so a caller holding
  /// an expensive-to-rebuild item (a staged finish with its delivery
  /// vector) keeps it intact when the ring is full and can fall back to a
  /// direct path.
  bool try_push(T& item) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail == buffer_.size()) {
      return false;
    }
    buffer_[head & mask_] = std::move(item);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.
  std::optional<T> pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (head == tail) {
      return std::nullopt;
    }
    T item = std::move(buffer_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return item;
  }

  /// Consumer side, bulk: pops every item visible on entry, invoking
  /// `fn(T&&)` for each, and publishes the new tail once instead of per
  /// item. Items pushed concurrently with the drain are left for the next
  /// one. Returns the number of items consumed.
  template <typename F>
  std::size_t drain(F&& fn) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    for (std::size_t i = tail; i != head; ++i) {
      fn(std::move(buffer_[i & mask_]));
    }
    if (head != tail) {
      tail_.store(head, std::memory_order_release);
    }
    return head - tail;
  }

  std::size_t size() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return buffer_.size(); }

 private:
  std::vector<T> buffer_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace df::conc
