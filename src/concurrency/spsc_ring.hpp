// Single-producer single-consumer lock-free ring buffer.
//
// Used by the tracer (each worker thread records scheduler events into its
// own ring; the report aggregator drains them) and by the engine's staged
// delivery rings (each worker stages finished-pair records; the current
// drainer applies them in batches — see DESIGN.md).
//
// "Single consumer" means *one consumer at a time*, not one consumer
// thread forever: the consumer role may migrate between threads provided
// the handoff happens through an acquire/release (or stronger) edge — the
// engine's `draining` flag exchange is exactly that. The same applies to
// the producer role.
//
// Debug builds enforce that contract: each side's operations assert they
// run on the role's owning thread (DF_ASSERT_PRODUCER / DF_ASSERT_CONSUMER
// below). The first use claims the role; a legal migration must be
// announced with adopt_producer()/adopt_consumer() *after* the
// synchronizing handoff, so an unannounced thread switch — exactly the bug
// class the SPSC memory orderings cannot survive — fails a DF_CHECK
// instead of corrupting the ring. Release builds compile all of it away.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <thread>
#include <vector>

#include "support/check.hpp"

// Owner-thread assertions for the SPSC contract; no-ops under NDEBUG. Kept
// as macros so the owner fields and checks vanish from release builds.
#ifndef NDEBUG
#define DF_ASSERT_PRODUCER(ring) (ring).assert_producer()
#define DF_ASSERT_CONSUMER(ring) (ring).assert_consumer()
#else
#define DF_ASSERT_PRODUCER(ring) ((void)0)
#define DF_ASSERT_CONSUMER(ring) ((void)0)
#endif

namespace df::conc {

template <typename T>
class SpscRing {
 public:
  /// capacity must be a power of two (masking instead of modulo).
  explicit SpscRing(std::size_t capacity)
      : buffer_(capacity), mask_(capacity - 1) {
    DF_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0,
             "SPSC ring capacity must be a power of two >= 2");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full (the item is not stored).
  bool push(T item) { return try_push(item); }

  /// Producer side; moves from `item` only on success, so a caller holding
  /// an expensive-to-rebuild item (a staged finish with its delivery
  /// vector) keeps it intact when the ring is full and can fall back to a
  /// direct path.
  bool try_push(T& item) {
    DF_ASSERT_PRODUCER(*this);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail == buffer_.size()) {
      return false;
    }
    buffer_[head & mask_] = std::move(item);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.
  std::optional<T> pop() {
    DF_ASSERT_CONSUMER(*this);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (head == tail) {
      return std::nullopt;
    }
    T item = std::move(buffer_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return item;
  }

  /// Consumer side, bulk: pops every item visible on entry, invoking
  /// `fn(T&&)` for each, and publishes the new tail once instead of per
  /// item. Items pushed concurrently with the drain are left for the next
  /// one. Returns the number of items consumed.
  template <typename F>
  std::size_t drain(F&& fn) {
    DF_ASSERT_CONSUMER(*this);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    for (std::size_t i = tail; i != head; ++i) {
      fn(std::move(buffer_[i & mask_]));
    }
    if (head != tail) {
      tail_.store(head, std::memory_order_release);
    }
    return head - tail;
  }

  std::size_t size() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return buffer_.size(); }

  /// Transfers the producer role to the calling thread. Legal only after
  /// a synchronizing handoff (an acquire/release or stronger edge) with
  /// the previous producer — e.g. under the egress link mutex.
  void adopt_producer() {
#ifndef NDEBUG
    producer_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }

  /// Transfers the consumer role to the calling thread. Legal only after
  /// a synchronizing handoff with the previous consumer — e.g. winning
  /// the engine's draining_ exchange.
  void adopt_consumer() {
#ifndef NDEBUG
    consumer_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }

#ifndef NDEBUG
  void assert_producer() { assert_role(producer_, "producer"); }
  void assert_consumer() { assert_role(consumer_, "consumer"); }
#endif

 private:
#ifndef NDEBUG
  // The relaxed order is deliberate: the owner slot is bookkeeping about
  // the handoff, not the handoff itself — a migration that relies on this
  // atomic for synchronization is already a contract violation.
  void assert_role(std::atomic<std::thread::id>& owner, const char* role) {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id seen{};
    if (owner.compare_exchange_strong(seen, self,
                                      std::memory_order_relaxed)) {
      return;  // first use claims the role
    }
    DF_CHECK(seen == self, "SPSC contract violation: ", role,
             " used from a second thread without adopt_", role, "()");
  }
#endif

  std::vector<T> buffer_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
#ifndef NDEBUG
  std::atomic<std::thread::id> producer_{};
  std::atomic<std::thread::id> consumer_{};
#endif
};

}  // namespace df::conc
