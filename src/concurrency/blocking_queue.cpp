// Compile-test translation unit: instantiates the template to keep the
// header self-contained.
#include "concurrency/blocking_queue.hpp"

namespace df::conc {

template class BlockingQueue<int>;

}  // namespace df::conc
