#include "concurrency/sharded_counter.hpp"

#include <chrono>
#include <functional>

#include "support/check.hpp"

namespace df::conc {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ShardedCounter::ShardedCounter(std::size_t shards)
    : shards_(std::make_unique<Shard[]>(shards)), shard_count_(shards) {
  DF_CHECK(shards > 0, "counter needs at least one shard");
}

std::size_t ShardedCounter::shard_index() const {
  const auto id = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return id % shard_count_;
}

void ShardedCounter::add(std::uint64_t delta) {
  shards_[shard_index()].count.fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t ShardedCounter::value() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    total += shards_[i].count.load(std::memory_order_relaxed);
  }
  return total;
}

void ShardedCounter::reset() {
  for (std::size_t i = 0; i < shard_count_; ++i) {
    shards_[i].count.store(0, std::memory_order_relaxed);
  }
}

ScopedNanoTimer::ScopedNanoTimer(ShardedCounter& sink)
    : sink_(sink), start_ns_(now_ns()) {}

ScopedNanoTimer::~ScopedNanoTimer() { sink_.add(now_ns() - start_ns_); }

}  // namespace df::conc
