// Striped locking and monotone frontier publication, the two concurrency
// primitives behind the sharded scheduler (DESIGN.md, "Sharded scheduler").
//
// StripedMutexSet is a fixed array of cache-line-padded mutexes addressed
// by index. Keeping the mutexes out of the data they guard lets the guarded
// records stay movable/regular (the scheduler's Shard structs are plain
// aggregates; shard k is guarded by stripe k). The stripes are annotated
// conc::Mutex so acquisitions flow through the thread-safety analysis, but
// the *association* "stripe k guards shard k" is a dynamic, index-addressed
// contract clang cannot express statically — shard fields stay unannotated
// and TSan remains the check for that discipline (see annotations.hpp).
//
// AtomicFrontier publishes a monotonically non-decreasing uint32 (the
// per-phase frontier x) from one writer to many lock-free readers. Writers
// use advance_to, which never moves the value backward even if two writers
// race with stale candidates — the composition rule "x only grows within a
// phase's lifetime" is enforced here rather than trusted.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "concurrency/annotations.hpp"
#include "support/check.hpp"

namespace df::conc {

class StripedMutexSet {
 public:
  explicit StripedMutexSet(std::size_t stripes)
      : stripes_(std::make_unique<Stripe[]>(stripes)), count_(stripes) {
    DF_CHECK(stripes >= 1, "striped mutex set needs at least one stripe");
  }

  StripedMutexSet(const StripedMutexSet&) = delete;
  StripedMutexSet& operator=(const StripedMutexSet&) = delete;

  Mutex& at(std::size_t i) {
    DF_DCHECK(i < count_, "stripe index out of range");
    return stripes_[i].mutex;
  }
  std::size_t size() const { return count_; }

 private:
  // One mutex per cache line so stripes guarding adjacent shards do not
  // false-share their lock words under cross-shard traffic.
  struct alignas(64) Stripe {
    Mutex mutex;
  };

  std::unique_ptr<Stripe[]> stripes_;
  std::size_t count_;
};

class AtomicFrontier {
 public:
  /// Monotone publish: the stored value only ever grows. Safe under racing
  /// writers with stale candidates (the larger value wins).
  void advance_to(std::uint32_t candidate) {
    std::uint32_t current = value_.load(std::memory_order_relaxed);
    while (current < candidate &&
           !value_.compare_exchange_weak(current, candidate,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
    }
  }

  std::uint32_t get() const { return value_.load(std::memory_order_acquire); }

  /// Non-monotone reset for slot reuse; callers must guarantee no
  /// concurrent advance_to (the scheduler resets only while the phase slot
  /// is free, under the window lock).
  void reset(std::uint32_t value) {
    value_.store(value, std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> value_{0};
};

}  // namespace df::conc
