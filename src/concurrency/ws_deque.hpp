// Bounded Chase–Lev work-stealing deque + the global overflow injector
// (DESIGN.md, "Work-stealing dispatch").
//
// WsDeque<T> is the per-worker run queue of the engine's work-stealing
// dispatch mode: the owning worker pushes and pops at the *bottom* (LIFO —
// the most recently issued pair is the cache-warmest), while any number of
// thieves steal() concurrently from the *top* (FIFO — thieves take the
// oldest work, the least likely to be in the owner's cache anyway). The
// top/bottom index protocol is Chase & Lev's (SPAA'05) as corrected for
// weak memory models by Lê, Pop, Cohen & Zappa Nardelli (PPoPP'13): the
// owner's pop decrements bottom, fences, re-reads top, and resolves the
// size-one race against thieves with a seq_cst CAS on top; a thief reads
// top, fences, reads bottom, and claims an element with the same CAS.
//
// One deliberate deviation from the textbook algorithm, forced by the
// element type: the classic deque lets a thief *read the element before
// its CAS* and discard the value if the CAS fails. That is only sound for
// trivially copyable elements — a failed-CAS read may race with the owner
// overwriting the slot one lap later, which for a Scheduler::ReadyPair
// (an InputBundle holding vectors) would be a genuine use-after-move, not
// a benign torn read. Each slot therefore carries a lap-tagged sequence
// number (Vyukov-style): producers publish an element with a release store
// of seq = index + 1 *after* constructing it, and every consumer — owner
// pop or winning thief — moves the element out only after it owns the
// index, then frees the slot with a release store of seq = index +
// capacity. The seq handshake gives move-construction a proper
// happens-before edge in both directions (publish -> consume, consume ->
// next-lap overwrite), so the deque is TSan-clean with arbitrary movable
// payloads while keeping the Chase–Lev owner/thief index protocol intact.
//
// Boundedness: the buffer never grows. When the owner's push finds the
// deque full — or finds the slot's previous consumer still moving its
// element out (seq lag; same observable state) — push() returns false and
// the caller spills the batch to the mutex-protected Injector, the shared
// overflow pool every worker sweeps after an empty steal pass. Overflow is
// thus loss-free and the common path stays lock-free.
//
// Thread-safety annotation note: top_/bottom_/slot seqs form a lock-free
// protocol that clang's lock-based analysis cannot express — like
// SpscRing, the contract is documented here and enforced by the TSan
// stress suite (tests/test_ws_deque.cpp, ctest -L concurrency). The
// Injector below is an ordinary mutex-guarded structure and is fully
// annotated.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "concurrency/annotations.hpp"
#include "support/check.hpp"

namespace df::conc {

template <typename T>
class WsDeque {
 public:
  /// capacity must be a power of two >= 2 (indices are masked, and the
  /// lap-tag arithmetic below relies on it).
  explicit WsDeque(std::size_t capacity)
      : slots_(capacity), mask_(capacity - 1) {
    DF_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0,
             "work-stealing deque capacity must be a power of two >= 2");
    for (std::size_t i = 0; i < capacity; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  /// Owner side: pushes at the bottom. Returns false — leaving `item`
  /// intact — when the deque is full (size == capacity, or the slot's
  /// previous consumer has not finished vacating it yet); the caller
  /// spills to the Injector.
  bool push(T& item) {
    const std::uint64_t b = bottom_.load(std::memory_order_relaxed);
    Slot& slot = slots_[b & mask_];
    // seq == b marks the slot free *for this lap*: the index-(b - capacity)
    // consumer has moved its element out and release-stored b. Acquire
    // pairs with that store, ordering our overwrite after its move-out.
    if (slot.seq.load(std::memory_order_acquire) != b) {
      return false;
    }
    slot.item = std::move(item);
    // Publish element-then-index: a thief claims index b only after its
    // fenced bottom read observes b+1, which this release store precedes.
    slot.seq.store(b + 1, std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner side: pops at the bottom (LIFO). The size-one race against a
  /// concurrent thief is resolved by the seq_cst CAS on top_, exactly as
  /// in Chase–Lev take().
  std::optional<T> pop() {
    const std::uint64_t b = bottom_.load(std::memory_order_relaxed);
    std::uint64_t t = top_.load(std::memory_order_relaxed);
    if (t >= b) {
      return std::nullopt;  // empty — no reservation to undo
    }
    // Reserve index b-1: publish the decremented bottom before re-reading
    // top. The seq_cst fence pairs with the thief's fence (see steal());
    // the classic argument applies: once a thief could observe
    // bottom == b-1 it can claim at most indices < b-1, so after the
    // re-read below shows t < b-1 the element is exclusively ours.
    bottom_.store(b - 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    t = top_.load(std::memory_order_relaxed);
    if (t > b - 1) {
      // Thieves emptied it between the two reads; undo the reservation.
      bottom_.store(b, std::memory_order_relaxed);
      return std::nullopt;
    }
    if (t == b - 1) {
      // Last element: race the thieves with the same CAS they use. Win or
      // lose, the deque ends empty with top == bottom == b — so the slot's
      // next producer writes absolute index (b-1) + capacity, a full lap
      // ahead, and the free marker must say so (kNextLap).
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b, std::memory_order_relaxed);
      if (!won) {
        return std::nullopt;
      }
      return take_slot(b - 1, kNextLap);
    }
    // t < b-1: interior element, no thief can reach index b-1 (see the
    // fence argument above). bottom stays at b-1, so the very next push
    // reuses absolute index b-1 — free the slot for the *same* index.
    return take_slot(b - 1, kSameIndex);
  }

  /// Thief side: steals from the top (FIFO). Any thread. Returns nullopt
  /// when empty or when it lost a race (callers sweep victims in a loop,
  /// so a lost race is just "try the next victim").
  std::optional<T> steal() {
    std::uint64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::uint64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) {
      return std::nullopt;  // observed empty
    }
    Slot& slot = slots_[t & mask_];
    // The element at index t must be published (seq == t+1) before we race
    // for it. seq == t + capacity means another thief already consumed it
    // and the slot is a lap ahead — our CAS below would fail anyway, so
    // treat it as a lost race. (Reading seq first also keeps us from
    // CASing ownership of an index whose element a slow producer has not
    // finished constructing — impossible here because bottom is published
    // after seq, but cheap belt-and-braces.)
    if (slot.seq.load(std::memory_order_acquire) != t + 1) {
      return std::nullopt;
    }
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost to another thief or the owner's pop
    }
    // We own index t exclusively: move the element out, then free the
    // slot. top is now t+1 and bottom >= t+1, so the slot's next producer
    // writes absolute index t + capacity (a lap ahead); the release store
    // pairs with that producer's acquire load, ordering our move-out
    // before its overwrite.
    T item = std::move(slot.item);
    slot.seq.store(t + mask_ + 1, std::memory_order_release);
    return item;
  }

  /// Approximate size (exact when quiescent). Owner or any thread.
  std::size_t size() const {
    const std::uint64_t b = bottom_.load(std::memory_order_acquire);
    const std::uint64_t t = top_.load(std::memory_order_acquire);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq;
    T item;
  };

  /// Which absolute index writes this slot next after the owner vacates
  /// it. The free marker must equal that index exactly — push's fullness
  /// check is `seq == b` — and it differs by pop path: an interior pop
  /// leaves bottom at the popped index (same index is pushed next), while
  /// a CAS-won last-element pop leaves top == bottom one past it (the
  /// slot's next write is a whole lap ahead). Getting this wrong is not a
  /// race but a livelock: push would see a permanently-stale seq and
  /// spill every subsequent item to the injector.
  enum FreeFor : std::uint64_t { kSameIndex = 0, kNextLap };

  /// Moves the element at absolute index `index` out and frees its slot.
  /// Caller has exclusive ownership of the index.
  std::optional<T> take_slot(std::uint64_t index, FreeFor next) {
    Slot& slot = slots_[index & mask_];
    T item = std::move(slot.item);
    slot.seq.store(next == kSameIndex ? index : index + mask_ + 1,
                   std::memory_order_release);
    return item;
  }

  std::vector<Slot> slots_;
  std::size_t mask_;
  // Owner-written (push/pop), thief-read. Separate cache lines so steals
  // do not bounce the owner's line.
  alignas(64) std::atomic<std::uint64_t> bottom_{0};
  alignas(64) std::atomic<std::uint64_t> top_{0};
};

/// The mutex-protected global overflow pool behind every WsDeque: owner
/// pushes that find their deque full spill whole batches here, and workers
/// sweep it after an empty steal pass (before parking). Also the dispatch
/// target for producers that own no deque (the environment thread).
///
/// Deliberately simple — one mutex, one ring — because it is off the hot
/// path by construction: traffic lands here only on deque overflow or
/// cross-thread handoff, both batch-granular, so the lock is amortized
/// over whole chunks.
template <typename T>
class Injector {
 public:
  Injector() = default;
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Moves every element of `items` in under one lock acquisition; the
  /// source is left with moved-from shells (callers clear() and reuse).
  /// Returns false — consuming nothing — once closed.
  bool push_batch(std::span<T> items) {
    MutexLock lock(mutex_);
    if (closed_) {
      return false;
    }
    for (T& item : items) {
      place(std::move(item));
    }
    return true;
  }

  /// Single-element spill (the owner-pop path never uses this; deque
  /// overflow spills batches). Returns false once closed.
  bool push(T item) {
    MutexLock lock(mutex_);
    if (closed_) {
      return false;
    }
    place(std::move(item));
    return true;
  }

  /// Pops one element, FIFO. Never blocks.
  std::optional<T> try_pop() {
    MutexLock lock(mutex_);
    if (count_ == 0) {
      return std::nullopt;
    }
    return take();
  }

  /// Pops up to `limit` elements into `out` under one lock acquisition.
  /// Returns the number taken.
  std::size_t try_pop_batch(std::vector<T>& out, std::size_t limit) {
    MutexLock lock(mutex_);
    const std::size_t take_n = count_ < limit ? count_ : limit;
    for (std::size_t i = 0; i < take_n; ++i) {
      out.push_back(take());
    }
    return take_n;
  }

  /// Marks the injector closed: future pushes are rejected (the caller
  /// checks the engine's abandoning flag, mirroring BlockingQueue), pops
  /// keep draining what is left.
  void close() {
    MutexLock lock(mutex_);
    closed_ = true;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return count_;
  }

  bool empty() const { return size() == 0; }

 private:
  void place(T item) DF_REQUIRES(mutex_) {
    if (count_ == ring_.size()) {
      grow();
    }
    ring_[(head_ + count_) & (ring_.size() - 1)] = std::move(item);
    ++count_;
  }

  T take() DF_REQUIRES(mutex_) {
    T item = std::move(ring_[head_]);
    head_ = (head_ + 1) & (ring_.size() - 1);
    --count_;
    return item;
  }

  void grow() DF_REQUIRES(mutex_) {
    const std::size_t size = ring_.empty() ? 16 : ring_.size() * 2;
    std::vector<T> grown(size);
    for (std::size_t i = 0; i < count_; ++i) {
      grown[i] = std::move(ring_[(head_ + i) & (ring_.size() - 1)]);
    }
    ring_ = std::move(grown);
    head_ = 0;
  }

  mutable Mutex mutex_;
  std::vector<T> ring_ DF_GUARDED_BY(mutex_);  // circular; power-of-two size
  std::size_t head_ DF_GUARDED_BY(mutex_) = 0;
  std::size_t count_ DF_GUARDED_BY(mutex_) = 0;
  bool closed_ DF_GUARDED_BY(mutex_) = false;
};

}  // namespace df::conc
