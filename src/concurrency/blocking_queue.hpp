// Thread-safe blocking MPMC queue — the "run queue" of the paper.
//
// The paper (section 3.2) assumes "a thread-safe queue: any thread executing
// a dequeue operation suspends until an item is available for dequeuing, and
// the dequeue operation atomically removes an item from the queue such that
// each item on the queue is dequeued at most once. It is also assumed to be
// empty at system initialization time." Its Java prototype used
// java.util.concurrent.BlockingQueue; this is the C++ equivalent, extended
// with close() semantics so computation threads can shut down cleanly (the
// paper's processes are infinite loops; real systems must terminate).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>

#include "support/check.hpp"

namespace df::conc {

template <typename T>
class BlockingQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit BlockingQueue(std::size_t capacity = 0)
      : capacity_(capacity == 0 ? std::numeric_limits<std::size_t>::max()
                                : capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueues an item; blocks while the queue is at capacity.
  /// Returns false (dropping the item) if the queue has been closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking enqueue; returns false if full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// nullopt signals "closed and empty" — the worker-thread exit condition.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;  // closed and drained
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking dequeue.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: pending and future pushes fail, blocked poppers wake
  /// and drain the remaining items before receiving nullopt.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace df::conc
