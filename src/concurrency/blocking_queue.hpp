// Thread-safe blocking MPMC queue — the "run queue" of the paper.
//
// The paper (section 3.2) assumes "a thread-safe queue: any thread executing
// a dequeue operation suspends until an item is available for dequeuing, and
// the dequeue operation atomically removes an item from the queue such that
// each item on the queue is dequeued at most once. It is also assumed to be
// empty at system initialization time." Its Java prototype used
// java.util.concurrent.BlockingQueue; this is the C++ equivalent, extended
// with close() semantics so computation threads can shut down cleanly (the
// paper's processes are infinite loops; real systems must terminate).
//
// Storage is a power-of-two circular buffer instead of a std::deque: a
// deque allocates and frees a block roughly every page of traffic, while the
// ring reaches its steady-state size once and then moves items in place.
// push_all() enqueues a whole batch of ready pairs under one lock
// acquisition with a bounded number of wakeups, which is how the engine
// drains a scheduler transition (see DESIGN.md, "Batched run-queue
// traffic").
//
// Wakeup discipline (audited for under-wake/lost-wakeup):
//   * not_empty_: consumers block only while the queue is empty, so k items
//     added need at most k wakeups, and one item needs exactly one — the
//     per-item notify_one in push()/single-item push_all() is sufficient,
//     never a lost wakeup. Batches wake min(batch, waiting consumers)
//     threads; with no consumer blocked at publication time no signal is
//     needed at all, because any later consumer re-checks the count under
//     the mutex before sleeping.
//   * not_full_: producers block on *batch-sized* room (push_all waits for
//     its whole batch to fit), so waiters are heterogeneous: waking one
//     producer after one pop could select a large-batch producer that goes
//     back to sleep while a small-batch producer that now fits sleeps
//     forever — a genuine lost wakeup. Consumers therefore notify_all when
//     any producer is waiting; each woken producer re-evaluates its own
//     predicate.
//
// Lock discipline is machine-checked: every field below is
// DF_GUARDED_BY(mutex_) and the ring helpers are DF_REQUIRES(mutex_), so a
// clang -Wthread-safety build fails on any unguarded access (see
// concurrency/annotations.hpp for the conventions).
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "concurrency/annotations.hpp"
#include "support/check.hpp"

namespace df::conc {

template <typename T>
class BlockingQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit BlockingQueue(std::size_t capacity = 0)
      : capacity_(capacity == 0 ? std::numeric_limits<std::size_t>::max()
                                : capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueues an item; blocks while the queue is at capacity.
  /// Returns false (dropping the item) if the queue has been closed.
  bool push(T item) {
    std::size_t wake = 0;
    {
      UniqueLock lock(mutex_);
      ++waiting_pushers_;
      while (!(closed_ || count_ < capacity_)) {
        not_full_.wait(lock);
      }
      --waiting_pushers_;
      if (closed_) {
        return false;
      }
      place(std::move(item));
      wake = waiting_poppers_ == 0 ? 0 : 1;
    }
    notify_consumers(wake);
    return true;
  }

  /// Enqueues every item of `items` under a single lock acquisition with at
  /// most one notify call; the batch is moved from (elements left valid but
  /// unspecified — callers typically clear() and reuse the vector). Blocks
  /// while the batch does not fit under the capacity bound, so the batch
  /// must be no larger than the capacity. Returns false (dropping the whole
  /// batch) if the queue has been closed; never partially enqueues.
  bool push_all(std::vector<T>& items) {
    if (items.empty()) {
      return true;
    }
    DF_CHECK(items.size() <= capacity_,
             "batch larger than the queue capacity would never fit");
    std::size_t wake = 0;
    {
      UniqueLock lock(mutex_);
      ++waiting_pushers_;
      while (!(closed_ || count_ + items.size() <= capacity_)) {
        not_full_.wait(lock);
      }
      --waiting_pushers_;
      if (closed_) {
        return false;
      }
      for (T& item : items) {
        place(std::move(item));
      }
      // k new items can usefully wake at most k consumers, and consumers
      // only block while the queue is empty, so min(batch, waiters) covers
      // every consumer this batch could serve (see header comment).
      wake = std::min(items.size(), waiting_poppers_);
    }
    notify_consumers(wake);
    return true;
  }

  /// Non-blocking enqueue; returns false if full or closed.
  bool try_push(T item) {
    std::size_t wake = 0;
    {
      MutexLock lock(mutex_);
      if (closed_ || count_ >= capacity_) {
        return false;
      }
      place(std::move(item));
      wake = waiting_poppers_ == 0 ? 0 : 1;
    }
    notify_consumers(wake);
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// nullopt signals "closed and empty" — the worker-thread exit condition.
  std::optional<T> pop() {
    UniqueLock lock(mutex_);
    ++waiting_poppers_;
    while (!(closed_ || count_ != 0)) {
      not_empty_.wait(lock);
    }
    --waiting_poppers_;
    if (count_ == 0) {
      return std::nullopt;  // closed and drained
    }
    T item = take();
    const bool producers_waiting = waiting_pushers_ != 0;
    lock.unlock();
    if (producers_waiting) {
      // Producers wait on batch-sized room (heterogeneous predicates), so
      // waking just one could pick a batch that still does not fit and
      // strand a smaller one — wake them all and let each re-check.
      not_full_.notify_all();
    }
    return item;
  }

  /// Blocking dequeue with a pre-block hook: like pop(), but runs `pre`
  /// (with the lock released) every time the queue is observed empty and
  /// open, before committing to sleep. The hook may push into this very
  /// queue — the engine drains its staged finish rings there, which can
  /// enqueue the pairs the caller is about to wait for — so the post-hook
  /// re-check under the lock is what makes the sleep safe. Replaces the
  /// old try_pop-then-pop retry: a hit costs one lock acquisition instead
  /// of two, and the hook is skipped entirely once the queue is closed and
  /// drained (nothing a drain produces can matter after close — see
  /// Engine::finish()/~Engine for why both closers guarantee that).
  template <typename PreBlock>
  std::optional<T> pop_with_preblock(PreBlock&& pre) {
    UniqueLock lock(mutex_);
    for (;;) {
      if (count_ != 0) {
        T item = take();
        const bool producers_waiting = waiting_pushers_ != 0;
        lock.unlock();
        if (producers_waiting) {
          not_full_.notify_all();  // heterogeneous batch predicates, see pop()
        }
        return item;
      }
      if (closed_) {
        return std::nullopt;  // closed and drained
      }
      lock.unlock();
      pre();
      lock.lock();
      if (count_ != 0 || closed_) {
        continue;  // the hook produced work (or the queue closed meanwhile)
      }
      ++waiting_poppers_;
      while (!(closed_ || count_ != 0)) {
        not_empty_.wait(lock);
      }
      --waiting_poppers_;
      // Loop: the hit/closed checks at the top consume whatever woke us. A
      // spurious pass re-runs the hook, which is cheap when idle (a single
      // atomic threshold check on the engine side).
    }
  }

  /// Non-blocking dequeue.
  std::optional<T> try_pop() {
    UniqueLock lock(mutex_);
    if (count_ == 0) {
      return std::nullopt;
    }
    T item = take();
    const bool producers_waiting = waiting_pushers_ != 0;
    lock.unlock();
    if (producers_waiting) {
      not_full_.notify_all();  // heterogeneous batch predicates, see pop()
    }
    return item;
  }

  /// Closes the queue: pending and future pushes fail, blocked poppers wake
  /// and drain the remaining items before receiving nullopt.
  void close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return count_;
  }

  bool empty() const { return size() == 0; }

 private:
  /// Wakes `wake` consumers (computed under the lock as min(items added,
  /// consumers then waiting)). Skipping the signal when no consumer was
  /// waiting is safe: a consumer that arrives later re-checks count_ under
  /// the mutex before sleeping, so it either sees the items or they were
  /// already taken — either way no signal is owed.
  void notify_consumers(std::size_t wake) {
    if (wake == 1) {
      not_empty_.notify_one();
    } else if (wake > 1) {
      not_empty_.notify_all();
    }
  }

  /// Appends one item, growing the ring if needed. Caller holds the lock
  /// and has already checked capacity/closed.
  void place(T item) DF_REQUIRES(mutex_) {
    if (count_ == ring_.size()) {
      grow();
    }
    ring_[(head_ + count_) & (ring_.size() - 1)] = std::move(item);
    ++count_;
  }

  T take() DF_REQUIRES(mutex_) {
    T item = std::move(ring_[head_]);
    head_ = (head_ + 1) & (ring_.size() - 1);
    --count_;
    return item;
  }

  void grow() DF_REQUIRES(mutex_) {
    std::size_t size = ring_.empty() ? 16 : ring_.size() * 2;
    std::vector<T> grown(size);
    for (std::size_t i = 0; i < count_; ++i) {
      grown[i] = std::move(ring_[(head_ + i) & (ring_.size() - 1)]);
    }
    ring_ = std::move(grown);
    head_ = 0;
  }

  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::vector<T> ring_ DF_GUARDED_BY(mutex_);  // circular; power-of-two size
  std::size_t head_ DF_GUARDED_BY(mutex_) = 0;
  std::size_t count_ DF_GUARDED_BY(mutex_) = 0;
  std::size_t capacity_;  // immutable after construction
  bool closed_ DF_GUARDED_BY(mutex_) = false;
  // Waiter counts, guarded by mutex_. A thread is counted from just before
  // its predicate wait to just after, so any thread actually blocked on a
  // condvar is always visible to the peer deciding whether to signal.
  std::size_t waiting_poppers_ DF_GUARDED_BY(mutex_) = 0;
  std::size_t waiting_pushers_ DF_GUARDED_BY(mutex_) = 0;
};

}  // namespace df::conc
