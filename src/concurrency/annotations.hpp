// Clang thread-safety annotations (DESIGN.md, "Static analysis & protocol
// verification").
//
// The DF_* macros expand to clang's capability attributes when the compiler
// understands them and to nothing everywhere else, so GCC builds are
// unaffected while the dedicated clang CI job compiles src/ with
// -Wthread-safety -Werror. The annotated wrappers below (Mutex, MutexLock,
// UniqueLock, CondVar) exist because libstdc++'s std::mutex carries no
// capability attributes: analysis only sees lock events that flow through
// annotated types, so every mutex that guards annotated fields must be a
// df::conc::Mutex and every acquisition must use the annotated guards.
//
// Conventions used across the codebase:
//   * fields owned by exactly one mutex are DF_GUARDED_BY(that_mutex_);
//   * private helpers called with the lock held are DF_REQUIRES(mutex_);
//   * fields protected by a *dynamic* lock set (e.g. ShardedScheduler's
//     index-addressed StripedMutexSet shards) cannot be expressed statically
//     and stay unannotated with a comment naming the discipline — TSan
//     remains the check for those;
//   * condition-variable predicates that read guarded fields are written as
//     explicit `while (!pred) cv.wait(lock);` loops inside the annotated
//     method, never as lambdas (clang analyzes lambdas as separate,
//     unannotated functions and would warn on the guarded reads).
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define DF_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define DF_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define DF_CAPABILITY(x) DF_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define DF_SCOPED_CAPABILITY DF_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define DF_GUARDED_BY(x) DF_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define DF_PT_GUARDED_BY(x) DF_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define DF_ACQUIRED_BEFORE(...) \
  DF_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define DF_ACQUIRED_AFTER(...) \
  DF_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define DF_REQUIRES(...) \
  DF_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define DF_REQUIRES_SHARED(...) \
  DF_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define DF_ACQUIRE(...) \
  DF_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define DF_ACQUIRE_SHARED(...) \
  DF_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define DF_RELEASE(...) \
  DF_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define DF_RELEASE_SHARED(...) \
  DF_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define DF_TRY_ACQUIRE(...) \
  DF_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define DF_EXCLUDES(...) \
  DF_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define DF_ASSERT_CAPABILITY(x) \
  DF_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define DF_RETURN_CAPABILITY(x) \
  DF_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Disables body analysis for functions that *implement* locking primitives
/// (aliased or conditional acquire/release the analysis cannot follow). The
/// interface annotations still apply at every call site.
#define DF_NO_TSA DF_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace df::conc {

/// std::mutex with the capability attribute. Satisfies BasicLockable /
/// Lockable, so std::unique_lock<Mutex> etc. still work where annotation
/// coverage is not wanted (e.g. dynamically sized lock vectors).
class DF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DF_ACQUIRE() DF_NO_TSA { std_.lock(); }
  void unlock() DF_RELEASE() DF_NO_TSA { std_.unlock(); }
  bool try_lock() DF_TRY_ACQUIRE(true) DF_NO_TSA { return std_.try_lock(); }

  /// Escape hatch for APIs that need the raw mutex (CondVar interop).
  std::mutex& native() { return std_; }

 private:
  std::mutex std_;
};

/// std::lock_guard equivalent over Mutex (scoped capability).
class DF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) DF_ACQUIRE(mutex) DF_NO_TSA
      : guard_(mutex.native()) {}
  ~MutexLock() DF_RELEASE() DF_NO_TSA {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  std::lock_guard<std::mutex> guard_;
};

/// std::unique_lock equivalent over Mutex: relockable scoped capability with
/// the std::unique_lock handle CondVar needs.
class DF_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) DF_ACQUIRE(mutex) DF_NO_TSA
      : lock_(mutex.native()) {}
  ~UniqueLock() DF_RELEASE() DF_NO_TSA {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() DF_ACQUIRE() DF_NO_TSA { lock_.lock(); }
  void unlock() DF_RELEASE() DF_NO_TSA { lock_.unlock(); }
  bool owns_lock() const noexcept { return lock_.owns_lock(); }

  /// The raw handle, for CondVar::wait only. (cv.wait releases and
  /// reacquires; analysis treats the whole wait as lock-neutral.)
  std::unique_lock<std::mutex>& native_handle() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable over Mutex/UniqueLock. wait() is lock-neutral to
/// the analysis (caller holds the capability before and after), which is
/// exactly the static contract of a cv wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lock) { cv_.wait(lock.native_handle()); }

  /// Predicate overload — ONLY for predicates that read atomics or other
  /// unguarded state. Predicates over DF_GUARDED_BY fields must be written
  /// as explicit while-loops in the annotated caller instead (see header
  /// comment).
  template <typename Predicate>
  void wait(UniqueLock& lock, Predicate pred) {
    cv_.wait(lock.native_handle(), std::move(pred));
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace df::conc
