// Fixed-size worker pool.
//
// The paper's prototype used java.util.concurrent.ThreadPoolExecutor for its
// "pool of computation threads". This pool serves two roles here:
//  * run_loops(): dedicates every worker to one long-running function — the
//    shape of the paper's computation processes (Listing 1);
//  * submit(): task-queue mode used by the lockstep baseline executor.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "concurrency/annotations.hpp"
#include "concurrency/blocking_queue.hpp"

namespace df::conc {

class ThreadPool {
 public:
  /// Spawns `worker_count` threads that consume submitted tasks.
  explicit ThreadPool(std::size_t worker_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Runs `task` on every worker concurrently and returns when all complete.
  /// The task receives the worker index [0, worker_count).
  void run_on_all(const std::function<void(std::size_t)>& task);

  /// Blocks until all submitted tasks have finished executing.
  void wait_idle();

 private:
  void worker_main();

  BlockingQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> in_flight_{0};
  // idle_mutex_ guards no fields (in_flight_ is atomic); it only serializes
  // the wait/notify handshake so the last worker's notify cannot slip
  // between wait_idle's predicate check and its sleep.
  Mutex idle_mutex_;
  CondVar idle_cv_;
};

/// Spawns `count` threads each running `body(index)`, joins them all before
/// returning. Simple structured-parallelism helper used by tests/benches.
void parallel_for_threads(std::size_t count,
                          const std::function<void(std::size_t)>& body);

}  // namespace df::conc
