#include "spec/event_csv.hpp"

#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace df::spec {

namespace {

event::Value parse_value(const std::string& type, const std::string& text,
                         std::size_t line) {
  if (type == "bool") {
    const auto parsed = support::parse_bool(text);
    DF_CHECK(parsed.has_value(), "line ", line, ": bad bool '", text, "'");
    return event::Value(*parsed);
  }
  if (type == "int") {
    const auto parsed = support::parse_int(text);
    DF_CHECK(parsed.has_value(), "line ", line, ": bad int '", text, "'");
    return event::Value(*parsed);
  }
  if (type == "double") {
    const auto parsed = support::parse_double(text);
    DF_CHECK(parsed.has_value(), "line ", line, ": bad double '", text, "'");
    return event::Value(*parsed);
  }
  if (type == "string") {
    return event::Value(text);
  }
  DF_CHECK(false, "line ", line, ": unknown value type '", type, "'");
  return {};
}

}  // namespace

std::vector<event::TimestampedEvent> parse_event_csv(const std::string& text,
                                                     const graph::Dag& dag) {
  std::vector<event::TimestampedEvent> events;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_number = 0;
  event::Timestamp previous = std::numeric_limits<event::Timestamp>::min();
  while (std::getline(lines, line)) {
    ++line_number;
    const auto trimmed = support::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      continue;
    }
    const auto fields = support::split(trimmed, ',');
    DF_CHECK(fields.size() == 5, "line ", line_number,
             ": expected 5 fields, got ", fields.size());
    const auto timestamp = support::parse_int(support::trim(fields[0]));
    if (!timestamp.has_value()) {
      // Non-numeric first field: treat the row as the header.
      DF_CHECK(line_number == 1 || events.empty(),
               "line ", line_number, ": bad timestamp '", fields[0], "'");
      continue;
    }
    DF_CHECK(*timestamp >= previous, "line ", line_number,
             ": timestamps must be non-decreasing");
    previous = *timestamp;

    const std::string vertex_name(support::trim(fields[1]));
    DF_CHECK(dag.has_vertex(vertex_name), "line ", line_number,
             ": unknown vertex '", vertex_name, "'");
    const auto port = support::parse_uint(support::trim(fields[2]));
    DF_CHECK(port.has_value() && *port <= 0xffff, "line ", line_number,
             ": bad port '", fields[2], "'");

    event::TimestampedEvent ev;
    ev.timestamp = *timestamp;
    ev.event.vertex = dag.vertex(vertex_name);
    ev.event.port = static_cast<graph::Port>(*port);
    ev.event.value =
        parse_value(std::string(support::trim(fields[3])),
                    std::string(support::trim(fields[4])), line_number);
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<event::TimestampedEvent> load_event_csv_file(
    const std::string& path, const graph::Dag& dag) {
  std::ifstream in(path);
  DF_CHECK(in.good(), "cannot open event file '", path, "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_event_csv(buffer.str(), dag);
}

std::vector<std::vector<event::ExternalEvent>> assemble_batches(
    const std::vector<event::TimestampedEvent>& events) {
  std::vector<std::vector<event::ExternalEvent>> batches;
  event::PhaseAssembler assembler;
  const auto take = [&batches](std::optional<event::PhaseBatch> batch) {
    if (batch.has_value()) {
      batches.push_back(std::move(batch->events));
    }
  };
  for (const event::TimestampedEvent& ev : events) {
    take(assembler.feed(ev));
  }
  take(assembler.flush());
  return batches;
}

void write_event_csv(std::ostream& out,
                     const std::vector<event::TimestampedEvent>& events,
                     const graph::Dag& dag) {
  out << "timestamp,vertex,port,type,value\n";
  for (const event::TimestampedEvent& ev : events) {
    out << ev.timestamp << ',' << dag.name(ev.event.vertex) << ','
        << ev.event.port << ',';
    const event::Value& value = ev.event.value;
    if (value.is_bool()) {
      out << "bool," << (value.as_bool() ? "true" : "false");
    } else if (value.is_int()) {
      out << "int," << value.as_int();
    } else if (value.is_double()) {
      std::ostringstream num;
      num.precision(17);
      num << value.as_double();
      out << "double," << num.str();
    } else if (value.is_string()) {
      out << "string," << value.as_string();
    } else {
      DF_CHECK(false, "unsupported value type for CSV: ",
               value.to_string());
    }
    out << '\n';
  }
}

}  // namespace df::spec
