// Fluent in-code graph builder: the programmatic alternative to XML specs.
//
//   spec::GraphBuilder b;
//   auto temp  = b.add("temp", model::factory_of<model::TemperatureSource>(
//                                  20.0, 8.0, 24, 0.5, 1.0));
//   auto avg   = b.add("avg", model::factory_of<model::MovingAverageModule>(24));
//   auto alarm = b.add("alarm", model::factory_of<model::ThresholdDetector>(28.0));
//   b.connect(temp, avg).connect(avg, alarm);
//   core::Program program = b.build(/*seed=*/42);
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/program.hpp"
#include "model/module.hpp"

namespace df::spec {

class GraphBuilder {
 public:
  /// Adds a vertex with an explicit module factory; returns its id.
  graph::VertexId add(std::string name, model::ModuleFactory factory);

  /// Adds a vertex with an inline lambda body.
  graph::VertexId add_lambda(std::string name,
                             std::function<void(model::PhaseContext&)> body);

  /// Connects from:from_port -> to:next free input port (or an explicit
  /// to_port). Returns *this for chaining.
  GraphBuilder& connect(graph::VertexId from, graph::VertexId to);
  GraphBuilder& connect(graph::VertexId from, graph::Port from_port,
                        graph::VertexId to, graph::Port to_port);

  std::size_t vertex_count() const { return factories_.size(); }

  /// Validates and assembles the Program. The builder is consumed.
  core::Program build(std::uint64_t seed = 0xdf5eedULL) &&;
  /// Copying build for reuse across executors/benches.
  core::Program build(std::uint64_t seed = 0xdf5eedULL) const&;

 private:
  graph::Dag dag_;
  std::vector<model::ModuleFactory> factories_;
  std::vector<graph::Port> next_in_port_;
};

}  // namespace df::spec
