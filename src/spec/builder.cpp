#include "spec/builder.hpp"

#include "support/check.hpp"

namespace df::spec {

graph::VertexId GraphBuilder::add(std::string name,
                                  model::ModuleFactory factory) {
  DF_CHECK(static_cast<bool>(factory), "vertex '", name,
           "' needs a module factory");
  const graph::VertexId id = dag_.add_vertex(std::move(name));
  factories_.push_back(std::move(factory));
  next_in_port_.push_back(0);
  return id;
}

graph::VertexId GraphBuilder::add_lambda(
    std::string name, std::function<void(model::PhaseContext&)> body) {
  auto shared =
      std::make_shared<std::function<void(model::PhaseContext&)>>(
          std::move(body));
  return add(std::move(name), [shared] {
    return std::make_unique<model::LambdaModule>(*shared);
  });
}

GraphBuilder& GraphBuilder::connect(graph::VertexId from, graph::VertexId to) {
  DF_CHECK(to < next_in_port_.size(), "unknown target vertex");
  return connect(from, 0, to, next_in_port_[to]);
}

GraphBuilder& GraphBuilder::connect(graph::VertexId from,
                                    graph::Port from_port, graph::VertexId to,
                                    graph::Port to_port) {
  dag_.add_edge(from, from_port, to, to_port);
  next_in_port_[to] = std::max<graph::Port>(
      next_in_port_[to], static_cast<graph::Port>(to_port + 1));
  return *this;
}

core::Program GraphBuilder::build(std::uint64_t seed) && {
  return core::make_program(std::move(dag_), std::move(factories_), seed);
}

core::Program GraphBuilder::build(std::uint64_t seed) const& {
  return core::make_program(dag_, factories_, seed);
}

}  // namespace df::spec
