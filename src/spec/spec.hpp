// Computation specifications (paper section 4).
//
// A specification describes a computation graph (vertices as module types
// with parameters, edges as port-to-port connections) plus simulation
// parameters (number of timesteps, root random seed, thread count) — the
// same content as the paper prototype's XML input. Example:
//
//   <computation>
//     <simulation timesteps="1000" seed="42" threads="4"/>
//     <graph>
//       <vertex id="temp"  type="temperature" base="20" amplitude="8"/>
//       <vertex id="avg"   type="moving_average" window="24"/>
//       <vertex id="alarm" type="threshold" threshold="28"/>
//       <edge from="temp" to="avg"/>
//       <edge from="avg"  to="alarm"/>
//     </graph>
//   </computation>
//
// Edge attributes from_port / to_port default to 0; to_port defaults to the
// next unused input port of the target, so linear chains need no port
// bookkeeping.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/program.hpp"
#include "model/registry.hpp"
#include "spec/xml.hpp"

namespace df::spec {

struct VertexSpec {
  std::string id;
  std::string type;
  std::map<std::string, std::string> params;
};

struct EdgeSpec {
  std::string from;
  graph::Port from_port = 0;
  std::string to;
  graph::Port to_port = 0;
};

struct SimulationSpec {
  std::uint64_t timesteps = 100;
  std::uint64_t seed = 0xdf5eedULL;
  std::size_t threads = 2;
  std::size_t max_inflight_phases = 64;
  /// Partition count for distributed execution (distrib::TransportEngine);
  /// 1 means single-machine. Consumed by run_spec --executor=transport.
  std::size_t machines = 1;
};

struct ComputationSpec {
  SimulationSpec simulation;
  std::vector<VertexSpec> vertices;
  std::vector<EdgeSpec> edges;

  /// Builds the executable Program, resolving module types via `registry`.
  core::Program to_program(
      const model::Registry& registry = model::Registry::builtin()) const;

  /// Serializes back to specification XML.
  std::string to_xml_text() const;
};

/// Parses specification XML text. Throws xml_error / check_error with
/// actionable messages on malformed input.
ComputationSpec parse_spec(const std::string& xml_text);

/// Reads a specification from a file path.
ComputationSpec load_spec_file(const std::string& path);

}  // namespace df::spec
