#include "spec/xml.hpp"

#include <cctype>
#include <sstream>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace df::spec {

xml_error::xml_error(const std::string& message, std::size_t line,
                     std::size_t column)
    : std::runtime_error(message + " at line " + std::to_string(line) +
                         ", column " + std::to_string(column)),
      line_(line), column_(column) {}

bool XmlNode::has_attribute(const std::string& key) const {
  return attributes.find(key) != attributes.end();
}

const std::string& XmlNode::attribute(const std::string& key) const {
  const auto it = attributes.find(key);
  DF_CHECK(it != attributes.end(), "element <", name,
           "> is missing attribute '", key, "'");
  return it->second;
}

std::string XmlNode::attribute_or(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = attributes.find(key);
  return it == attributes.end() ? fallback : it->second;
}

const XmlNode* XmlNode::child(const std::string& name) const {
  for (const XmlNode& node : children) {
    if (node.name == name) {
      return &node;
    }
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(
    const std::string& name) const {
  std::vector<const XmlNode*> out;
  for (const XmlNode& node : children) {
    if (node.name == name) {
      out.push_back(&node);
    }
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  XmlNode parse_document() {
    skip_misc();
    if (at_end()) {
      fail("document has no root element");
    }
    XmlNode root = parse_element();
    skip_misc();
    if (!at_end()) {
      fail("trailing content after the root element");
    }
    return root;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw xml_error(message, line_, column_);
  }

  bool starts_with(const char* prefix) const {
    return text_.compare(pos_, std::char_traits<char>::length(prefix),
                         prefix) == 0;
  }

  void expect(char c) {
    if (at_end() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    advance();
  }

  void skip_whitespace() {
    while (!at_end() &&
           std::isspace(static_cast<unsigned char>(peek())) != 0) {
      advance();
    }
  }

  /// Skips whitespace, comments, and processing instructions / XML decls.
  void skip_misc() {
    for (;;) {
      skip_whitespace();
      if (starts_with("<!--")) {
        skip_comment();
      } else if (starts_with("<?")) {
        skip_processing_instruction();
      } else {
        return;
      }
    }
  }

  void skip_comment() {
    pos_ += 4;  // "<!--"
    const std::size_t end = text_.find("-->", pos_);
    if (end == std::string::npos) {
      fail("unterminated comment");
    }
    while (pos_ < end + 3) {
      advance();
    }
  }

  void skip_processing_instruction() {
    const std::size_t end = text_.find("?>", pos_);
    if (end == std::string::npos) {
      fail("unterminated processing instruction");
    }
    while (pos_ < end + 2) {
      advance();
    }
  }

  static bool is_name_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
  }
  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  std::string parse_name() {
    if (at_end() || !is_name_start(peek())) {
      fail("expected a name");
    }
    std::string name;
    while (!at_end() && is_name_char(peek())) {
      name.push_back(advance());
    }
    return name;
  }

  std::string decode_entities(const std::string& raw) {
    std::string out;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      const std::size_t end = raw.find(';', i);
      if (end == std::string::npos) {
        fail("unterminated entity reference");
      }
      const std::string entity = raw.substr(i + 1, end - i - 1);
      if (entity == "lt") {
        out.push_back('<');
      } else if (entity == "gt") {
        out.push_back('>');
      } else if (entity == "amp") {
        out.push_back('&');
      } else if (entity == "quot") {
        out.push_back('"');
      } else if (entity == "apos") {
        out.push_back('\'');
      } else {
        fail("unknown entity '&" + entity + ";'");
      }
      i = end;
    }
    return out;
  }

  std::string parse_attribute_value() {
    if (at_end() || (peek() != '"' && peek() != '\'')) {
      fail("expected a quoted attribute value");
    }
    const char quote = advance();
    std::string raw;
    while (!at_end() && peek() != quote) {
      if (peek() == '<') {
        fail("'<' is not allowed inside attribute values");
      }
      raw.push_back(advance());
    }
    if (at_end()) {
      fail("unterminated attribute value");
    }
    advance();  // closing quote
    return decode_entities(raw);
  }

  XmlNode parse_element() {
    expect('<');
    XmlNode node;
    node.name = parse_name();

    // Attributes.
    for (;;) {
      skip_whitespace();
      if (at_end()) {
        fail("unterminated start tag");
      }
      if (peek() == '/' || peek() == '>') {
        break;
      }
      const std::string key = parse_name();
      skip_whitespace();
      expect('=');
      skip_whitespace();
      if (node.attributes.find(key) != node.attributes.end()) {
        fail("duplicate attribute '" + key + "'");
      }
      node.attributes.emplace(key, parse_attribute_value());
    }

    if (peek() == '/') {
      advance();
      expect('>');
      return node;  // self-closing
    }
    expect('>');

    // Content: text, children, comments.
    std::string text;
    for (;;) {
      if (at_end()) {
        fail("unterminated element <" + node.name + ">");
      }
      if (starts_with("</")) {
        advance();  // '<'
        advance();  // '/'
        const std::string closing = parse_name();
        if (closing != node.name) {
          fail("mismatched closing tag </" + closing + "> for <" +
               node.name + ">");
        }
        skip_whitespace();
        expect('>');
        node.text = std::string(support::trim(decode_entities(text)));
        return node;
      }
      if (starts_with("<!--")) {
        skip_comment();
        continue;
      }
      if (starts_with("<?")) {
        skip_processing_instruction();
        continue;
      }
      if (peek() == '<') {
        node.children.push_back(parse_element());
        continue;
      }
      text.push_back(advance());
    }
  }
};

std::string encode_entities(const std::string& raw) {
  std::string out;
  for (const char c : raw) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

XmlNode parse_xml(const std::string& text) {
  return Parser(text).parse_document();
}

std::string to_xml(const XmlNode& node, int indent) {
  std::ostringstream out;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  out << pad << '<' << node.name;
  for (const auto& [key, value] : node.attributes) {
    out << ' ' << key << "=\"" << encode_entities(value) << '"';
  }
  if (node.children.empty() && node.text.empty()) {
    out << "/>\n";
    return out.str();
  }
  out << '>';
  if (!node.text.empty()) {
    out << encode_entities(node.text);
  }
  if (!node.children.empty()) {
    out << '\n';
    for (const XmlNode& child : node.children) {
      out << to_xml(child, indent + 1);
    }
    out << pad;
  }
  out << "</" << node.name << ">\n";
  return out.str();
}

}  // namespace df::spec
