#include "spec/spec.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace df::spec {

namespace {

graph::Port parse_port(const XmlNode& node, const std::string& key,
                       graph::Port fallback) {
  if (!node.has_attribute(key)) {
    return fallback;
  }
  const auto parsed = support::parse_uint(node.attribute(key));
  DF_CHECK(parsed.has_value() && *parsed <= 0xffff, "edge attribute '", key,
           "' is not a valid port: ", node.attribute(key));
  return static_cast<graph::Port>(*parsed);
}

}  // namespace

ComputationSpec parse_spec(const std::string& xml_text) {
  const XmlNode root = parse_xml(xml_text);
  DF_CHECK(root.name == "computation",
           "specification root must be <computation>, got <", root.name,
           ">");

  ComputationSpec spec;
  if (const XmlNode* sim = root.child("simulation")) {
    spec.simulation.timesteps = support::parse_uint(
        sim->attribute_or("timesteps", "100")).value_or(100);
    spec.simulation.seed =
        support::parse_uint(sim->attribute_or("seed", "14675309"))
            .value_or(14675309);
    spec.simulation.threads =
        support::parse_uint(sim->attribute_or("threads", "2")).value_or(2);
    spec.simulation.max_inflight_phases =
        support::parse_uint(sim->attribute_or("max_inflight", "64"))
            .value_or(64);
    spec.simulation.machines =
        support::parse_uint(sim->attribute_or("machines", "1")).value_or(1);
    DF_CHECK(spec.simulation.machines >= 1,
             "simulation machines must be >= 1");
  }

  const XmlNode* graph_node = root.child("graph");
  DF_CHECK(graph_node != nullptr, "specification has no <graph> element");

  // Track next free input port per target so chains need no to_port.
  std::map<std::string, graph::Port> next_in_port;
  for (const XmlNode& child : graph_node->children) {
    if (child.name == "vertex") {
      VertexSpec vertex;
      vertex.id = child.attribute("id");
      vertex.type = child.attribute("type");
      for (const auto& [key, value] : child.attributes) {
        if (key != "id" && key != "type") {
          vertex.params.emplace(key, value);
        }
      }
      spec.vertices.push_back(std::move(vertex));
    } else if (child.name == "edge") {
      EdgeSpec edge;
      edge.from = child.attribute("from");
      edge.to = child.attribute("to");
      edge.from_port = parse_port(child, "from_port", 0);
      edge.to_port = parse_port(child, "to_port", next_in_port[edge.to]);
      next_in_port[edge.to] =
          std::max<graph::Port>(next_in_port[edge.to],
                                static_cast<graph::Port>(edge.to_port + 1));
      spec.edges.push_back(std::move(edge));
    } else {
      DF_CHECK(false, "unexpected element <", child.name, "> in <graph>");
    }
  }
  DF_CHECK(!spec.vertices.empty(), "specification defines no vertices");
  return spec;
}

ComputationSpec load_spec_file(const std::string& path) {
  std::ifstream in(path);
  DF_CHECK(in.good(), "cannot open specification file '", path, "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_spec(buffer.str());
}

core::Program ComputationSpec::to_program(
    const model::Registry& registry) const {
  graph::Dag dag;
  for (const VertexSpec& vertex : vertices) {
    dag.add_vertex(vertex.id);
  }
  for (const EdgeSpec& edge : edges) {
    dag.add_edge(dag.vertex(edge.from), edge.from_port, dag.vertex(edge.to),
                 edge.to_port);
  }

  std::vector<model::ModuleFactory> factories;
  factories.reserve(vertices.size());
  for (const VertexSpec& vertex : vertices) {
    const graph::VertexId id = dag.vertex(vertex.id);
    factories.push_back(registry.build(vertex.type,
                                       model::Params(vertex.params),
                                       dag.in_degree(id)));
  }
  return core::make_program(std::move(dag), std::move(factories),
                            simulation.seed);
}

std::string ComputationSpec::to_xml_text() const {
  XmlNode root;
  root.name = "computation";

  XmlNode sim;
  sim.name = "simulation";
  sim.attributes["timesteps"] = std::to_string(simulation.timesteps);
  sim.attributes["seed"] = std::to_string(simulation.seed);
  sim.attributes["threads"] = std::to_string(simulation.threads);
  sim.attributes["max_inflight"] =
      std::to_string(simulation.max_inflight_phases);
  sim.attributes["machines"] = std::to_string(simulation.machines);
  root.children.push_back(std::move(sim));

  XmlNode graph_node;
  graph_node.name = "graph";
  for (const VertexSpec& vertex : vertices) {
    XmlNode node;
    node.name = "vertex";
    node.attributes["id"] = vertex.id;
    node.attributes["type"] = vertex.type;
    for (const auto& [key, value] : vertex.params) {
      node.attributes[key] = value;
    }
    graph_node.children.push_back(std::move(node));
  }
  for (const EdgeSpec& edge : edges) {
    XmlNode node;
    node.name = "edge";
    node.attributes["from"] = edge.from;
    node.attributes["to"] = edge.to;
    node.attributes["from_port"] = std::to_string(edge.from_port);
    node.attributes["to_port"] = std::to_string(edge.to_port);
    graph_node.children.push_back(std::move(node));
  }
  root.children.push_back(std::move(graph_node));
  return to_xml(root);
}

}  // namespace df::spec
