// Minimal XML parser for computation specifications.
//
// The paper's prototype "takes as input an XML specification file for a
// computation" (section 4). This parser covers the subset such files need:
// nested elements, attributes (single or double quoted), self-closing tags,
// character data, comments, processing instructions/XML declarations, and
// the five predefined entities. No DTDs, namespaces, or CDATA.
//
// Written from scratch (no external dependencies), with precise error
// positions so malformed specs fail with actionable messages.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace df::spec {

class xml_error : public std::runtime_error {
 public:
  xml_error(const std::string& message, std::size_t line, std::size_t column);

  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<XmlNode> children;
  /// Concatenated character data directly inside this element, trimmed.
  std::string text;

  bool has_attribute(const std::string& key) const;
  /// DF_CHECKs presence.
  const std::string& attribute(const std::string& key) const;
  std::string attribute_or(const std::string& key,
                           const std::string& fallback) const;
  /// First child with the given element name, or nullptr.
  const XmlNode* child(const std::string& name) const;
  /// All children with the given element name.
  std::vector<const XmlNode*> children_named(const std::string& name) const;
};

/// Parses a document and returns its root element. Throws xml_error.
XmlNode parse_xml(const std::string& text);

/// Serializes a node tree back to XML (used for spec round-trip tests).
std::string to_xml(const XmlNode& node, int indent = 0);

}  // namespace df::spec
