// Timestamped event files: load recorded sensor streams from CSV and turn
// them into phases — the ingestion path a downstream user needs to run the
// correlator over real data instead of simulated sources.
//
// Format (header optional, detected by a non-numeric first field):
//
//   timestamp,vertex,port,type,value
//   100,flood_gauge,0,double,0.52
//   100,wind_gauge,0,double,12.1
//   160,flood_gauge,0,double,0.61
//
// `vertex` is the specification vertex id; `type` is one of
// bool|int|double|string. Rows must be non-decreasing in timestamp (the
// paper's arrival model); equal timestamps form one phase.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "event/phase.hpp"
#include "graph/dag.hpp"

namespace df::spec {

/// Parses CSV text into timestamped events, resolving vertex names through
/// `dag`. Throws via DF_CHECK with the offending line number on bad input.
std::vector<event::TimestampedEvent> parse_event_csv(const std::string& text,
                                                     const graph::Dag& dag);

/// Reads a CSV file from disk.
std::vector<event::TimestampedEvent> load_event_csv_file(
    const std::string& path, const graph::Dag& dag);

/// Groups a timestamped event stream into per-phase batches (phase k is
/// batches[k-1]); the inverse of one-batch-per-timestamp recording.
std::vector<std::vector<event::ExternalEvent>> assemble_batches(
    const std::vector<event::TimestampedEvent>& events);

/// Writes events back out in the same format (round-trip support).
void write_event_csv(std::ostream& out,
                     const std::vector<event::TimestampedEvent>& events,
                     const graph::Dag& dag);

}  // namespace df::spec
