// Hurricane / crisis management (paper section 1).
//
// "Dealing with hurricanes requires tracking the hurricanes, tracking ships
// and planes, monitoring the capacities of shelters and hospitals,
// monitoring flood levels and road conditions ... public health workers are
// concerned about issues such as hospital occupancy and blood supply;
// electric utilities ... are concerned about how best to deploy their
// repair crews."
//
// Two roles watch different composite conditions over the same sensor
// streams; both are expressed as predicates over event-stream histories and
// compiled into one correlation graph (phases are hours). The example also
// demonstrates the streaming API: external events are fed per phase, as if
// assembled from timestamped sensor feeds (event::PhaseAssembler).
#include <cmath>
#include <cstdio>

#include "core/engine.hpp"
#include "model/detectors.hpp"
#include "model/logic.hpp"
#include "model/sources.hpp"
#include "model/stats_models.hpp"
#include "spec/builder.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "trace/report.hpp"

int main() {
  using namespace df;

  spec::GraphBuilder b;
  // Sensors (sources). Flood level and wind arrive as *external* events;
  // occupancy and outage rates are simulated in-graph.
  const auto flood =
      b.add("flood_gauge",
            model::factory_of<model::ExternalPassthroughSource>());
  const auto wind = b.add(
      "wind_gauge", model::factory_of<model::ExternalPassthroughSource>());
  const auto occupancy = b.add(
      "hospital_occupancy",
      model::factory_of<model::RandomWalkSource>(0.55, 0.01, 0.005));
  const auto outages = b.add(
      "outage_reports",
      model::factory_of<model::DiseaseIncidenceSource>(2.0, 0.02, 6.0, 0.8));

  // Public-health view: hospitals near capacity AND flooding rising.
  const auto occ_high =
      b.add("occupancy_high", model::factory_of<model::ThresholdDetector>(0.85));
  const auto flood_high =
      b.add("flood_high", model::factory_of<model::ThresholdDetector>(3.0));
  const auto health_alert =
      b.add("health_alert", model::factory_of<model::AndGate>(std::size_t{2}));
  b.connect(occupancy, occ_high);
  b.connect(flood, flood_high);
  b.connect(occ_high, 0, health_alert, 0);
  b.connect(flood_high, 0, health_alert, 1);

  // Utility view: outage spike while winds are safe for crews.
  const auto outage_spike = b.add(
      "outage_spike",
      model::factory_of<model::SpikeDetector>(std::size_t{24}, 2.5));
  const auto outage_seen =
      b.add("outage_latch", model::factory_of<model::LatchModule>());
  const auto wind_safe =
      b.add("wind_safe", model::factory_of<model::ThresholdDetector>(25.0));
  const auto wind_not_safe =
      b.add("wind_unsafe_inv", model::factory_of<model::NotGate>());
  const auto dispatch_ok =
      b.add("dispatch_crews", model::factory_of<model::AndGate>(std::size_t{2}));
  b.connect(outages, outage_spike);
  b.connect(outage_spike, outage_seen);
  b.connect(wind, wind_safe);
  b.connect(wind_safe, wind_not_safe);  // true when wind <= 25 m/s
  b.connect(outage_seen, 0, dispatch_ok, 0);
  b.connect(wind_not_safe, 0, dispatch_ok, 1);

  const core::Program program = std::move(b).build(/*seed=*/8);

  // Simulated external feeds: a hurricane passing over ~day 3 of 7.
  support::Rng rng(99);
  core::CallbackFeed feed([&](event::PhaseId p) {
    std::vector<event::ExternalEvent> events;
    const double t = static_cast<double>(p);
    const double surge = std::exp(-std::pow((t - 72.0) / 18.0, 2.0));
    // Flood gauge reports on the hour; wind every 3 hours.
    events.push_back(event::ExternalEvent{
        flood, 0, event::Value(0.5 + 6.0 * surge +
                               rng.next_normal(0.0, 0.1))});
    if (p % 3 == 0) {
      events.push_back(event::ExternalEvent{
          wind, 0,
          event::Value(10.0 + 45.0 * surge + rng.next_normal(0.0, 2.0))});
    }
    return events;
  });

  core::EngineOptions options;
  options.threads = 4;
  core::Engine engine(program, options);
  engine.run(7 * 24, &feed);

  std::printf("crisis management: 7 simulated days, hourly phases\n");
  for (const core::SinkRecord& record : engine.sinks().canonical()) {
    if (record.vertex == health_alert) {
      std::printf("  hour %3llu [public health] hospitals+flood alert %s\n",
                  static_cast<unsigned long long>(record.phase),
                  record.value.as_bool() ? "RAISED" : "cleared");
    } else if (record.vertex == dispatch_ok) {
      std::printf("  hour %3llu [utility] crew dispatch window %s\n",
                  static_cast<unsigned long long>(record.phase),
                  record.value.as_bool() ? "OPEN" : "closed");
    }
  }
  std::printf("%s\n", trace::render_stats("engine", engine.stats()).c_str());
  return 0;
}
