// Intrusion detection over event streams (paper sections 1-2), driven
// entirely by an XML specification — the paper prototype's input format.
//
// The spec wires login-failure, packet-rate and port-scan streams through
// rate estimators, CUSUM drift detection and a majority vote: an intrusion
// is declared when at least two of three indicator conditions hold.
#include <cstdio>

#include "core/engine.hpp"
#include "spec/spec.hpp"
#include "support/table.hpp"
#include "trace/report.hpp"
#include "trace/serializability.hpp"

namespace {

constexpr const char* kSpec = R"(<?xml version="1.0"?>
<computation>
  <simulation timesteps="20000" seed="31337" threads="4" max_inflight="32"/>
  <graph>
    <!-- sensors -->
    <vertex id="login_failures" type="sparse_events" probability="0.02"/>
    <vertex id="packet_rate"    type="gaussian" mean="1000" stddev="120"/>
    <vertex id="port_probes"    type="burst" burst_probability="0.002"
            mean_burst_length="30"/>

    <!-- indicator conditions -->
    <vertex id="fail_rate"   type="rate" window="64"/>
    <vertex id="fail_high"   type="threshold" threshold="0.05"/>
    <vertex id="rate_drift"  type="cusum" k="30" h="600" warmup="64"/>
    <vertex id="drift_seen"  type="latch"/>
    <vertex id="probe_rate"  type="rate" window="64"/>
    <vertex id="probe_high"  type="threshold" threshold="0.2"/>

    <!-- composite condition: 2-of-3 indicators -->
    <vertex id="intrusion" type="majority" quorum="2"/>

    <edge from="login_failures" to="fail_rate"/>
    <edge from="fail_rate"      to="fail_high"/>
    <edge from="packet_rate"    to="rate_drift"/>
    <edge from="rate_drift"     to="drift_seen"/>
    <edge from="port_probes"    to="probe_rate"/>
    <edge from="probe_rate"     to="probe_high"/>
    <edge from="fail_high"  to="intrusion"/>
    <edge from="drift_seen" to="intrusion"/>
    <edge from="probe_high" to="intrusion"/>
  </graph>
</computation>)";

}  // namespace

int main() {
  using namespace df;

  const spec::ComputationSpec computation = spec::parse_spec(kSpec);
  const core::Program program = computation.to_program();

  core::EngineOptions options;
  options.threads = computation.simulation.threads;
  options.max_inflight_phases = computation.simulation.max_inflight_phases;
  core::Engine engine(program, options);
  engine.run(computation.simulation.timesteps, nullptr);

  std::printf("intrusion detection (XML-specified graph), %llu phases\n",
              static_cast<unsigned long long>(
                  computation.simulation.timesteps));
  const auto intrusion = program.dag.vertex("intrusion");
  std::size_t transitions = 0;
  for (const core::SinkRecord& record : engine.sinks().canonical()) {
    if (record.vertex == intrusion) {
      ++transitions;
      if (transitions <= 20) {
        std::printf("  phase %6llu intrusion condition %s\n",
                    static_cast<unsigned long long>(record.phase),
                    record.value.as_bool() ? "RAISED" : "cleared");
      }
    }
  }
  std::printf("  %zu intrusion-state transitions in total\n", transitions);
  std::printf("%s\n", trace::render_stats("engine", engine.stats()).c_str());

  // Sanity: the parallel run matches the sequential reference.
  core::Engine checker(program, options);
  const auto report = trace::check_against_sequential(
      program, checker, std::min<event::PhaseId>(
                            computation.simulation.timesteps, 2000));
  std::printf("serializability check (2k phases): %s\n",
              report.equivalent ? "EQUIVALENT" : "DIVERGENT");
  return report.equivalent ? 0 : 1;
}
