// Quickstart: build a three-vertex correlation graph, run it on the parallel
// engine, and read the alarms from the sink store.
//
//   temperature sensor --> 6-sample moving average --> threshold alarm
//
// The sensor reports only when the reading moves by >= 0.5 degrees (Δ-
// discipline); the alarm emits only when it flips state. Run with no
// arguments; see examples/ for richer scenarios.
#include <cstdio>

#include "core/engine.hpp"
#include "model/detectors.hpp"
#include "model/sources.hpp"
#include "model/stats_models.hpp"
#include "spec/builder.hpp"
#include "trace/report.hpp"

int main() {
  using namespace df;

  // 1. Describe the computation graph.
  spec::GraphBuilder builder;
  const auto temp =
      builder.add("temp", model::factory_of<model::TemperatureSource>(
                              /*base=*/20.0, /*amplitude=*/8.0,
                              /*period=*/std::uint64_t{24}, /*noise=*/0.5,
                              /*report_delta=*/0.5));
  const auto avg = builder.add(
      "avg", model::factory_of<model::MovingAverageModule>(std::size_t{6}));
  const auto alarm = builder.add(
      "alarm", model::factory_of<model::ThresholdDetector>(/*threshold=*/24.0));
  builder.connect(temp, avg).connect(avg, alarm);

  // 2. Build the program (this computes the satisfactory vertex numbering).
  const core::Program program = std::move(builder).build(/*seed=*/42);

  // 3. Run 7 simulated days (one phase per hour) on the parallel engine.
  core::EngineOptions options;
  options.threads = 2;
  core::Engine engine(program, options);
  engine.run(/*num_phases=*/7 * 24, /*feed=*/nullptr);

  // 4. Read the alarm stream back out.
  std::printf("quickstart: temperature alarm over 7 simulated days\n");
  for (const core::SinkRecord& record : engine.sinks().canonical()) {
    if (record.vertex == alarm) {
      std::printf("  hour %3llu: alarm %s\n",
                  static_cast<unsigned long long>(record.phase),
                  record.value.as_bool() ? "RAISED" : "cleared");
    }
  }
  std::printf("%s\n", trace::render_stats("engine", engine.stats()).c_str());
  (void)temp;
  (void)avg;
  return 0;
}
