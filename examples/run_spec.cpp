// Generic specification runner — the closest analogue of the paper's
// prototype binary: load an XML computation specification, execute it on a
// chosen executor, print the sink streams and statistics.
//
// Usage:
//   run_spec <spec.xml> [--executor=engine|sequential|lockstep|eager|
//            transport] [--phases=N] [--threads=K] [--shards=K]
//            [--dispatch=central|steal] [--machines=K]
//            [--channel=inproc|socket] [--verify] [--events=file.csv]
//
// --threads and --shards configure the worker pool: for --executor=engine
// the single engine's thread count and scheduler shards, for
// --executor=transport the per-partition engines' (two-level parallelism:
// machines x threads workers in total).
//
// With --verify, the run is repeated on the sequential reference and the
// sink streams are compared (serializability check). With --events, the
// named timestamped-event CSV is grouped into phases (equal timestamps =
// one phase, paper section 2) and fed to source vertices; the phase count
// then comes from the file. --executor=transport runs the partitioned
// multi-engine transport; the partition count comes from --machines or the
// spec's <simulation machines="K"> attribute.
#include <cstdio>

#include "baseline/eager.hpp"
#include "baseline/lockstep.hpp"
#include "baseline/sequential.hpp"
#include "core/engine.hpp"
#include "distrib/transport.hpp"
#include "spec/event_csv.hpp"
#include "spec/spec.hpp"
#include "support/cli.hpp"
#include "trace/report.hpp"
#include "trace/serializability.hpp"

int main(int argc, char** argv) {
  using namespace df;
  const support::CliFlags flags(argc, argv);
  if (flags.positional().empty()) {
    std::printf("usage: run_spec <spec.xml> [--executor=engine|sequential|"
                "lockstep|eager|transport] [--phases=N] [--threads=K] "
                "[--shards=K] [--dispatch=central|steal] [--machines=K] "
                "[--channel=inproc|socket] [--verify]\n");
    return 2;
  }

  const spec::ComputationSpec computation =
      spec::load_spec_file(flags.positional()[0]);
  const core::Program program = computation.to_program();

  std::vector<std::vector<event::ExternalEvent>> batches;
  const std::string events_path = flags.get("events", std::string());
  if (!events_path.empty()) {
    batches = spec::assemble_batches(
        spec::load_event_csv_file(events_path, program.dag));
  }
  const event::PhaseId phases =
      !batches.empty()
          ? batches.size()
          : flags.get("phases", computation.simulation.timesteps);
  const std::size_t threads =
      flags.get("threads",
                static_cast<std::uint64_t>(computation.simulation.threads));
  const std::size_t shards = flags.get("shards", std::uint64_t{1});
  const std::string executor_name =
      flags.get("executor", std::string("engine"));
  // Reject nonsense parallelism up front rather than silently falling back
  // to a default: a benchmark script passing --threads=0 should fail loud.
  if (threads == 0) {
    std::printf("--threads must be >= 1\n");
    return 2;
  }
  if (shards == 0) {
    std::printf("--shards must be >= 1\n");
    return 2;
  }
  const std::string dispatch_name =
      flags.get("dispatch", std::string("central"));
  if (dispatch_name != "central" && dispatch_name != "steal") {
    std::printf("unknown dispatch '%s' (expected central|steal)\n",
                dispatch_name.c_str());
    return 2;
  }
  const auto dispatch = dispatch_name == "steal"
                            ? core::EngineOptions::Dispatch::kWorkStealing
                            : core::EngineOptions::Dispatch::kCentral;

  std::unique_ptr<core::Executor> executor;
  if (executor_name == "engine") {
    core::EngineOptions options;
    options.threads = threads;
    options.scheduler_shards = shards;
    options.dispatch = dispatch;
    options.max_inflight_phases = computation.simulation.max_inflight_phases;
    executor = std::make_unique<core::Engine>(program, options);
  } else if (executor_name == "sequential") {
    executor = std::make_unique<baseline::SequentialExecutor>(program);
  } else if (executor_name == "lockstep") {
    executor = std::make_unique<baseline::LockstepExecutor>(program, threads);
  } else if (executor_name == "eager") {
    executor = std::make_unique<baseline::EagerExecutor>(program);
  } else if (executor_name == "transport") {
    distrib::TransportOptions options;
    options.machines = flags.get(
        "machines",
        static_cast<std::uint64_t>(computation.simulation.machines));
    // Two-level parallelism: every partition block runs the full worker
    // pool, so --threads/--shards configure each per-block engine.
    options.engine_threads = threads;
    options.scheduler_shards = shards;
    options.dispatch = dispatch;
    options.max_inflight_phases = computation.simulation.max_inflight_phases;
    const std::string channel = flags.get("channel", std::string("inproc"));
    if (channel == "socket") {
      options.channel = distrib::ChannelKind::kSocket;
    } else if (channel == "inproc") {
      options.channel = distrib::ChannelKind::kInProcess;
    } else {
      std::printf("unknown channel '%s' (expected inproc|socket)\n",
                  channel.c_str());
      return 2;
    }
    executor = std::make_unique<distrib::TransportEngine>(program, options);
  } else {
    std::printf("unknown executor '%s'\n", executor_name.c_str());
    return 2;
  }

  core::VectorFeed feed(batches);
  executor->run(phases, batches.empty() ? nullptr : &feed);

  std::printf("%s\n", trace::machine_summary().c_str());
  std::size_t shown = 0;
  for (const core::SinkRecord& record : executor->sinks().canonical()) {
    if (++shown > 40) {
      std::printf("  ... %zu more sink records\n",
                  executor->sinks().size() - 40);
      break;
    }
    std::printf("  %s (%s)\n", core::to_string(record).c_str(),
                program.dag.name(record.vertex).c_str());
  }
  std::printf("%s\n",
              trace::render_stats(executor_name, executor->stats()).c_str());

  if (flags.get("verify", false)) {
    baseline::SequentialExecutor reference(program);
    core::VectorFeed reference_feed(batches);
    reference.run(phases, batches.empty() ? nullptr : &reference_feed);
    const auto report =
        trace::compare_sinks(reference.sinks(), executor->sinks());
    std::printf("serializability: %s\n", report.summary().c_str());
    return report.equivalent ? 0 : 1;
  }
  return 0;
}
