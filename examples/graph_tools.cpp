// Graph inspection tool: load an XML specification and print its DAG in
// DOT format annotated with the satisfactory numbering, the m(v) table,
// and partitioning metrics for a requested machine count.
//
// Usage:
//   graph_tools <spec.xml> [--machines=K] [--dot]
#include <cstdio>

#include "graph/dot.hpp"
#include "graph/numbering.hpp"
#include "graph/partition.hpp"
#include "spec/spec.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace df;
  const support::CliFlags flags(argc, argv);
  if (flags.positional().empty()) {
    std::printf("usage: graph_tools <spec.xml> [--machines=K] [--dot]\n");
    return 2;
  }

  const spec::ComputationSpec computation =
      spec::load_spec_file(flags.positional()[0]);
  const core::Program program = computation.to_program();
  const graph::Dag& dag = program.dag;
  const graph::Numbering& numbering = program.numbering;

  std::printf("graph: %zu vertices, %zu edges, %zu sources, %zu sinks\n",
              dag.vertex_count(), dag.edge_count(), dag.sources().size(),
              dag.sinks().size());

  support::Table table({"index", "vertex", "release r(v)", "m(index)"});
  const auto releases = graph::release_indices(dag, numbering);
  for (std::uint32_t i = 1; i <= dag.vertex_count(); ++i) {
    const graph::VertexId v = numbering.vertex_at[i];
    table.add_row({support::Table::num(static_cast<std::uint64_t>(i)),
                   dag.name(v),
                   support::Table::num(
                       static_cast<std::uint64_t>(releases[v])),
                   support::Table::num(
                       static_cast<std::uint64_t>(numbering.m[i]))});
  }
  std::printf("%s", table.render().c_str());

  const auto machines = static_cast<std::size_t>(
      flags.get("machines", std::uint64_t{2}));
  if (machines > 1 && machines <= dag.vertex_count()) {
    const auto balanced = graph::partition_balanced(numbering, machines);
    const auto min_cut =
        graph::partition_min_cut(dag, numbering, machines, 8);
    const auto mb = graph::evaluate_partitioning(dag, numbering, balanced);
    const auto mc = graph::evaluate_partitioning(dag, numbering, min_cut);
    std::printf(
        "partitioning for %zu machines: balanced cut=%zu imbalance=%s | "
        "min_cut cut=%zu imbalance=%s\n",
        machines, mb.edge_cut, support::Table::num(mb.imbalance, 2).c_str(),
        mc.edge_cut, support::Table::num(mc.imbalance, 2).c_str());
  }

  if (flags.get("dot", false)) {
    std::printf("%s", graph::to_dot(dag, numbering).c_str());
  }
  return 0;
}
