// Money-laundering detection (paper section 1).
//
// "One of the steps in the application may be to detect anomalies in
// banking transactions, where anomalies are defined as outlier points in a
// statistical regression model. ... the module outputs a message only when
// it receives an anomalous transaction."
//
// Graph:
//   three transaction streams (different banks) -> per-stream z-score
//   anomaly detectors (emit only on anomaly) -> a latch per stream -> an
//   OR gate raising the composite "suspicious activity" condition, plus a
//   cross-stream rate estimator watching the anomaly event rate.
//
// The run prints the anomaly events and the traffic statistics showing the
// Δ-advantage: millions-to-one input-to-alert ratios cost nothing
// downstream.
#include <cstdio>

#include "core/engine.hpp"
#include "model/detectors.hpp"
#include "model/logic.hpp"
#include "model/sources.hpp"
#include "model/stats_models.hpp"
#include "model/synthetic.hpp"
#include "spec/builder.hpp"
#include "support/table.hpp"
#include "trace/report.hpp"

int main() {
  using namespace df;

  spec::GraphBuilder b;
  std::vector<graph::VertexId> detectors;
  std::vector<graph::VertexId> banks;
  for (int i = 0; i < 3; ++i) {
    const auto bank = b.add(
        "bank" + std::to_string(i),
        model::factory_of<model::TransactionSource>(
            /*mean=*/100.0 + 20.0 * i, /*sigma=*/15.0,
            /*anomaly_rate=*/5e-4, /*anomaly_scale=*/40.0));
    const auto detector = b.add(
        "anomaly" + std::to_string(i),
        model::factory_of<model::ZScoreDetector>(std::size_t{256}, 6.0,
                                                 std::size_t{32}));
    b.connect(bank, detector);
    banks.push_back(bank);
    detectors.push_back(detector);
  }

  // Composite condition: any stream has shown an anomaly. A "tap" vertex
  // fans out from each detector with a dangling output, so every anomaly
  // event is also recorded in the sink store for the report below.
  const auto alarm =
      b.add("suspicious", model::factory_of<model::OrGate>(std::size_t{3}));
  std::vector<graph::VertexId> taps;
  for (int i = 0; i < 3; ++i) {
    const auto latch =
        b.add("latch" + std::to_string(i),
              model::factory_of<model::LatchModule>());
    const auto tap = b.add("tap" + std::to_string(i),
                           model::factory_of<model::ForwardModule>());
    b.connect(detectors[static_cast<std::size_t>(i)], latch);
    b.connect(detectors[static_cast<std::size_t>(i)], tap);
    b.connect(latch, 0, alarm, static_cast<graph::Port>(i));
    taps.push_back(tap);
  }

  const core::Program program = std::move(b).build(/*seed=*/2026);

  core::EngineOptions options;
  options.threads = 4;
  core::Engine engine(program, options);
  const event::PhaseId phases = 50000;  // 50k transaction ticks per stream
  engine.run(phases, nullptr);

  std::printf("money laundering watch: %llu phases x 3 banks\n",
              static_cast<unsigned long long>(phases));
  std::size_t anomalies = 0;
  for (const core::SinkRecord& record : engine.sinks().canonical()) {
    for (std::size_t i = 0; i < taps.size(); ++i) {
      if (record.vertex == taps[i]) {
        std::printf("  phase %6llu bank%zu anomaly, z=%s\n",
                    static_cast<unsigned long long>(record.phase), i,
                    support::Table::num(record.value.as_double(), 2).c_str());
        ++anomalies;
      }
    }
    if (record.vertex == engine.instance().program().dag.vertex(
                             "suspicious") &&
        record.value.as_bool()) {
      std::printf("  phase %6llu composite SUSPICIOUS-ACTIVITY raised\n",
                  static_cast<unsigned long long>(record.phase));
    }
  }

  const auto stats = engine.stats();
  std::printf("\n%zu anomaly events out of %llu transactions (%.4f%%)\n",
              anomalies,
              static_cast<unsigned long long>(3 * phases),
              100.0 * static_cast<double>(anomalies) /
                  static_cast<double>(3 * phases));
  std::printf("%s\n", trace::render_stats("engine", stats).c_str());
  // The per-phase bank->detector feed is 3*phases messages by construction;
  // everything past the detectors is anomaly-driven.
  const std::uint64_t downstream =
      stats.messages_delivered - 3 * phases;
  std::printf(
      "delta advantage: %llu messages crossed the detectors vs %llu that "
      "per-input forwarding (option 1 of the paper) would have sent.\n",
      static_cast<unsigned long long>(downstream),
      static_cast<unsigned long long>(3 * phases));
  return 0;
}
