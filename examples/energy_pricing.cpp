// Energy-pricing model composition (paper section 1).
//
// "Consider a system for pricing electrical energy ... The model for power
// demand may assume that temperature will vary in some fashion ... The
// power-demand model expects to receive an event if data from a sensor or
// some other model indicates that its assumptions about future temperatures
// are wrong."
//
// Graph:
//   temperature sensor ----------------------------+
//        |                                          v
//        +--> forecaster --(assumption)--> expectation monitor --> demand
//                                                         model adjustments
//
// The forecaster publishes its temperature assumption; the expectation
// monitor compares live readings against it and notifies the demand model
// *only* when the assumption is violated — the paper's "information is
// conveyed by the absence of events as well as the presence of events".
#include <cstdio>

#include "core/engine.hpp"
#include "model/detectors.hpp"
#include "model/regression.hpp"
#include "model/sources.hpp"
#include "model/stats_models.hpp"
#include "spec/builder.hpp"
#include "support/table.hpp"
#include "trace/report.hpp"

int main() {
  using namespace df;

  spec::GraphBuilder b;
  const auto sensor = b.add(
      "temperature",
      model::factory_of<model::TemperatureSource>(
          /*base=*/20.0, /*amplitude=*/10.0, /*period=*/std::uint64_t{24},
          /*noise=*/0.8, /*report_delta=*/0.2));
  const auto forecaster = b.add(
      "forecaster", model::factory_of<model::HoltForecastModule>(0.4, 0.2));
  const auto monitor = b.add(
      "assumption_monitor",
      model::factory_of<model::ExpectationMonitor>(/*tolerance=*/4.0));
  // The demand model: adjusts its load estimate when assumptions break.
  const auto demand = b.add_lambda(
      "power_demand", [load = 1000.0](model::PhaseContext& ctx) mutable {
        if (ctx.has_input(0)) {
          // Assumption violated: re-derive load from the observed reading
          // (hotter than assumed -> more cooling load).
          const double observed = ctx.input(0).as_number();
          load = 1000.0 + 25.0 * (observed - 20.0);
          ctx.emit(0, load);
        }
      });
  b.connect(sensor, 0, monitor, 0);      // observations
  b.connect(sensor, forecaster);
  b.connect(forecaster, 0, monitor, 1);  // published assumption
  b.connect(monitor, demand);

  const core::Program program = std::move(b).build(/*seed=*/77);

  core::EngineOptions options;
  options.threads = 2;
  core::Engine engine(program, options);
  const event::PhaseId phases = 30 * 24;  // 30 simulated days, hourly
  engine.run(phases, nullptr);

  std::printf("energy pricing: %llu hourly phases\n",
              static_cast<unsigned long long>(phases));
  std::size_t adjustments = 0;
  for (const core::SinkRecord& record : engine.sinks().canonical()) {
    if (record.vertex == demand) {
      ++adjustments;
      if (adjustments <= 10) {
        std::printf("  hour %4llu demand adjusted to %s MW\n",
                    static_cast<unsigned long long>(record.phase),
                    support::Table::num(record.value.as_double(), 1).c_str());
      }
    }
  }
  std::printf("  ... %zu assumption violations / demand adjustments total\n",
              adjustments);
  const auto stats = engine.stats();
  std::printf("%s\n", trace::render_stats("engine", stats).c_str());
  std::printf(
      "note: %llu vertex executions but only %zu violation notifications "
      "reached the demand model — absence of messages means assumptions "
      "hold.\n",
      static_cast<unsigned long long>(stats.executed_pairs), adjustments);
  (void)monitor;
  return 0;
}
