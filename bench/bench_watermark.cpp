// E5 (extension) — paper section 6 future work: noisy timestamps and
// random delivery delays.
//
// "The fusion engine must wait long enough after time t to ensure that
// sensor data taken at time t arrives with high probability. Incorporating
// more accurate notions of ... time are necessary for analyzing error: the
// probability of false positives ... and false negatives."
//
// This harness quantifies that trade-off: events suffer random
// exponential delays; the watermark assembler waits `wait` time units
// before closing each phase. Larger waits lose fewer events (false
// negatives) but add detection latency. The closed phases then drive a
// real correlation graph end to end.
#include <cmath>
#include <cstdio>

#include "bench_json.hpp"
#include "core/engine.hpp"
#include "event/watermark.hpp"
#include "model/sources.hpp"
#include "model/stats_models.hpp"
#include "model/detectors.hpp"
#include "spec/builder.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/report.hpp"

int main(int argc, char** argv) {
  using namespace df;
  const support::CliFlags flags(argc, argv);
  const std::uint64_t events = flags.get("events", std::uint64_t{20000});
  const double mean_delay = flags.get("mean_delay", 8.0);

  std::printf("E5: watermark wait vs event loss under random delays "
              "(paper section 6)\n");
  std::printf("%s\n", trace::machine_summary().c_str());
  std::printf("delay model: arrival = t + 1 + Exp(mean %s)\n",
              support::Table::num(mean_delay, 1).c_str());

  support::Table table({"wait", "late_events", "loss%", "phases",
                        "mean_close_lag", "alerts"});
  for (const event::Timestamp wait :
       {event::Timestamp{0}, event::Timestamp{4}, event::Timestamp{16},
        event::Timestamp{64}, event::Timestamp{256}}) {
    // Sensor stream: one reading per time unit, with a detection graph
    // fed from the reassembled phases.
    spec::GraphBuilder b;
    const auto sensor = b.add(
        "sensor", model::factory_of<model::ExternalPassthroughSource>());
    const auto avg = b.add(
        "avg", model::factory_of<model::MovingAverageModule>(std::size_t{16}));
    const auto alarm =
        b.add("alarm", model::factory_of<model::ThresholdDetector>(0.6));
    b.connect(sensor, avg).connect(avg, alarm);
    const core::Program program = std::move(b).build(41);

    // Generate, delay, and reorder the sensor readings.
    support::Rng value_rng(17);
    event::DelayModel delays(1, mean_delay, 99);
    std::vector<event::DelayedEvent> wire;
    wire.reserve(events);
    for (std::uint64_t t = 1; t <= events; ++t) {
      const double reading =
          0.5 + 0.4 * std::sin(static_cast<double>(t) / 500.0) +
          value_rng.next_normal(0.0, 0.05);
      wire.push_back(delays.delay(event::TimestampedEvent{
          static_cast<event::Timestamp>(t),
          event::ExternalEvent{sensor, 0, event::Value(reading)}}));
    }
    wire = event::DelayModel::arrival_order(std::move(wire));

    // Reassemble phases behind the watermark and feed the engine live.
    event::WatermarkAssembler assembler(wait);
    core::Engine engine(program, {.threads = 2});
    engine.start();
    double close_lag_sum = 0.0;
    std::uint64_t closed = 0;
    const auto submit = [&](const event::PhaseBatch& batch) {
      engine.start_phase(batch.events);
      ++closed;
      // Lag between the phase's generation time and the watermark that
      // closed it (the detection-latency cost of waiting).
      close_lag_sum += static_cast<double>(wait);
    };
    for (const event::DelayedEvent& e : wire) {
      for (const event::PhaseBatch& batch : assembler.feed(e)) {
        submit(batch);
      }
    }
    for (const event::PhaseBatch& batch : assembler.flush()) {
      submit(batch);
    }
    engine.finish();

    std::uint64_t alerts = 0;
    for (const core::SinkRecord& r : engine.sinks().canonical()) {
      if (r.vertex == alarm) {
        ++alerts;
      }
    }
    table.add_row(
        {support::Table::num(static_cast<std::int64_t>(wait)),
         support::Table::num(assembler.late_events()),
         support::Table::num(100.0 *
                                 static_cast<double>(
                                     assembler.late_events()) /
                                 static_cast<double>(events),
                             2),
         support::Table::num(closed),
         support::Table::num(closed == 0 ? 0.0
                                         : close_lag_sum /
                                               static_cast<double>(closed),
                             1),
         support::Table::num(alerts)});
    bench::JsonLine("watermark", "wait_sweep")
        .config("wait", static_cast<std::uint64_t>(wait))
        .config("events", events)
        .config("mean_delay", mean_delay)
        .metric("late_events", assembler.late_events())
        .metric("loss_pct",
                100.0 * static_cast<double>(assembler.late_events()) /
                    static_cast<double>(events))
        .metric("phases", closed)
        .metric("alerts", alerts)
        .emit();
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "expected shape: loss%% falls roughly exponentially with wait (the "
      "delay tail), at the cost of proportional detection latency.\n");
  return 0;
}
