// T2 — the paper's section 4 prediction.
//
// "We predict that as long as the computations performed by the vertices
// take significantly more time than the computations performed to maintain
// the data structures, the speedup will be close to linear in the number of
// processors."
//
// Sweep per-vertex grain (ns of busy-work) x thread count; report the
// speedup surface and the measured bookkeeping share. The prediction reads
// as: speedup approaches the ideal as bookkeeping% -> 0.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/engine.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/report.hpp"

int main(int argc, char** argv) {
  using namespace df;
  const support::CliFlags flags(argc, argv);
  const std::uint64_t phases = flags.get("phases", std::uint64_t{120});
  const std::uint64_t max_threads =
      flags.get("max_threads", std::uint64_t{4});

  std::printf("T2: speedup vs per-vertex grain (paper section 4 prediction)\n");
  std::printf("%s\n", trace::machine_summary().c_str());

  support::Table table(
      {"grain_ns", "threads", "wall_ms", "speedup", "bookkeeping%"});
  for (const std::uint64_t grain :
       {std::uint64_t{0}, std::uint64_t{1000}, std::uint64_t{10000},
        std::uint64_t{100000}}) {
    const core::Program program =
        bench::uniform_busywork_program(4, 4, grain, /*seed=*/2);
    double base_ms = 0.0;
    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
      // Best of three runs; the first run also serves as warmup so cold
      // caches and lazy allocations do not distort the 1-thread baseline.
      double wall_ms = 1e300;
      core::ExecStats stats;
      for (int repeat = 0; repeat < 3; ++repeat) {
        core::EngineOptions options;
        options.threads = threads;
        core::Engine engine(program, options);
        engine.run(phases, nullptr);
        const auto run_stats = engine.stats();
        if (run_stats.wall_seconds * 1e3 < wall_ms) {
          wall_ms = run_stats.wall_seconds * 1e3;
          stats = run_stats;
        }
      }
      if (threads == 1) {
        base_ms = wall_ms;
      }
      const double total_ns =
          static_cast<double>(stats.compute_ns + stats.bookkeeping_ns);
      table.add_row(
          {support::Table::num(grain),
           support::Table::num(static_cast<std::uint64_t>(threads)),
           support::Table::num(wall_ms, 1),
           support::Table::num(base_ms / wall_ms, 2) + "x",
           support::Table::num(
               total_ns <= 0.0
                   ? 0.0
                   : 100.0 * static_cast<double>(stats.bookkeeping_ns) /
                         total_ns,
               1)});
      bench::JsonLine("grain", "grain_thread_sweep")
          .config("grain_ns", grain)
          .config("threads", static_cast<std::uint64_t>(threads))
          .config("phases", phases)
          .metric("wall_ms", wall_ms)
          .metric("pairs_per_sec", stats.pairs_per_second())
          .metric("speedup", base_ms / wall_ms)
          .metric("bookkeeping_pct",
                  total_ns <= 0.0
                      ? 0.0
                      : 100.0 * static_cast<double>(stats.bookkeeping_ns) /
                            total_ns)
          .emit();
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "paper prediction: rows with low bookkeeping%% approach linear "
      "speedup; grain=0 rows are bookkeeping-bound and do not scale.\n");
  return 0;
}
