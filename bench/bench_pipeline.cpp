// F1 — Figure 1 reproduction: phase pipelining.
//
// The paper's Figure 1 shows a 10-node graph with 5 phases executing
// concurrently. This harness runs that 10-node layered graph under
// sustained phase injection, samples the number of in-flight phases at
// every pair completion, and prints the distribution — then compares
// throughput against the lockstep baseline, whose pipeline depth is pinned
// at 1 by construction.
#include <cstdio>
#include <thread>

#include "baseline/lockstep.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/engine.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/report.hpp"

int main(int argc, char** argv) {
  using namespace df;
  const support::CliFlags flags(argc, argv);
  const std::uint64_t phases = flags.get("phases", std::uint64_t{2000});
  const std::uint64_t grain_ns = flags.get("grain_ns", std::uint64_t{2000});
  const std::size_t threads = flags.get("threads", std::uint64_t{2});
  // staged=0 forces the PR 1 lock-per-pair path; 1 (default) stages
  // finished pairs in per-worker rings and applies them in batches.
  const bool staged = flags.get("staged", std::uint64_t{1}) != 0;
  // shards=1 (default) runs the flat scheduler; >1 opts in to the
  // partition-aligned sharded scheduler with the apply/collect drain.
  const std::size_t shards = flags.get("shards", std::uint64_t{1});
  // dispatch=central (default) routes ready pairs through the shared
  // blocking queue; dispatch=steal through per-worker deques (PR 9).
  const std::string dispatch_name =
      flags.get("dispatch", std::string{"central"});
  if (dispatch_name != "central" && dispatch_name != "steal") {
    std::fprintf(stderr, "--dispatch must be 'central' or 'steal', got %s\n",
                 dispatch_name.c_str());
    return 2;
  }
  const auto dispatch = dispatch_name == "steal"
                            ? core::EngineOptions::Dispatch::kWorkStealing
                            : core::EngineOptions::Dispatch::kCentral;

  std::printf("F1: cross-phase pipelining on the paper's 10-node graph\n");
  std::printf("%s\n", trace::machine_summary().c_str());

  support::Rng rng(3);
  const graph::Dag shape = graph::figure1_style_graph(rng);
  const core::Program program = bench::busywork_over(shape, grain_ns, 4);

  support::Table table({"window", "wall_ms", "max_inflight",
                        "mean_inflight", "p95_inflight", "phases/s"});
  for (const std::size_t window : {std::size_t{1}, std::size_t{2},
                                   std::size_t{5}, std::size_t{16},
                                   std::size_t{64}}) {
    core::EngineOptions options;
    options.threads = threads;
    options.max_inflight_phases = window;
    options.sample_inflight = true;
    options.staged_deliveries = staged;
    options.scheduler_shards = shards;
    options.dispatch = dispatch;
    core::Engine engine(program, options);
    engine.run(phases, nullptr);
    const auto stats = engine.stats();
    table.add_row(
        {support::Table::num(static_cast<std::uint64_t>(window)),
         support::Table::num(stats.wall_seconds * 1e3, 1),
         support::Table::num(stats.max_inflight_phases),
         support::Table::num(stats.mean_inflight_phases, 2),
         support::Table::num(engine.inflight_histogram().quantile(0.95)),
         support::Table::num(stats.phases_per_second(), 0)});
    bench::JsonLine("pipeline", "window_sweep")
        .config("window", static_cast<std::uint64_t>(window))
        .config("phases", phases)
        .config("grain_ns", grain_ns)
        .config("threads", static_cast<std::uint64_t>(threads))
        .config("staged", static_cast<std::uint64_t>(staged ? 1 : 0))
        .config("shards", static_cast<std::uint64_t>(shards))
        .config("dispatch", dispatch_name)
        .config("hw_concurrency",
                static_cast<std::uint64_t>(
                    std::thread::hardware_concurrency()))
        .metric("wall_ms", stats.wall_seconds * 1e3)
        .metric("ns_per_op", stats.executed_pairs == 0
                                 ? 0.0
                                 : stats.wall_seconds * 1e9 /
                                       static_cast<double>(
                                           stats.executed_pairs))
        .metric("pairs_per_sec", stats.pairs_per_second())
        .metric("phases_per_sec", stats.phases_per_second())
        .metric("mean_inflight", stats.mean_inflight_phases)
        .metric("steals_ok", stats.steals_ok)
        .metric("steals_empty", stats.steals_empty)
        .metric("parks", stats.parks)
        .emit();
  }
  std::printf("%s", table.render().c_str());

  // Lockstep baseline: one phase at a time, parallel only within a phase.
  baseline::LockstepExecutor lockstep(program, threads);
  lockstep.run(phases, nullptr);
  const auto ls = lockstep.stats();
  std::printf("lockstep baseline: %s ms, pipeline depth pinned at 1\n",
              support::Table::num(ls.wall_seconds * 1e3, 1).c_str());
  bench::JsonLine("pipeline", "lockstep_baseline")
      .config("phases", phases)
      .config("grain_ns", grain_ns)
      .config("threads", static_cast<std::uint64_t>(threads))
      .config("shards", static_cast<std::uint64_t>(shards))
      .config("dispatch", dispatch_name)
      .config("hw_concurrency",
              static_cast<std::uint64_t>(
                  std::thread::hardware_concurrency()))
      .metric("wall_ms", ls.wall_seconds * 1e3)
      .metric("pairs_per_sec", ls.pairs_per_second())
      .metric("phases_per_sec", ls.phases_per_second())
      .metric("steals_ok", ls.steals_ok)
      .metric("steals_empty", ls.steals_empty)
      .metric("parks", ls.parks)
      .emit();
  std::printf(
      "paper Figure 1: with a deep window, ~5 phases in flight on the "
      "10-node graph; window=1 reduces to the lockstep depth.\n");

  // The depth-5 claim, verbatim: a window of 5 should sustain ~5 in-flight
  // phases when workers are saturated.
  core::EngineOptions depth5;
  depth5.threads = threads;
  depth5.max_inflight_phases = 5;
  depth5.staged_deliveries = staged;
  depth5.scheduler_shards = shards;
  depth5.dispatch = dispatch;
  depth5.sample_inflight = true;
  core::Engine engine5(program, depth5);
  engine5.run(phases, nullptr);
  std::printf("window=5 run: mean in-flight %s, max %llu (paper depicts 5)\n",
              support::Table::num(engine5.stats().mean_inflight_phases, 2)
                  .c_str(),
              static_cast<unsigned long long>(
                  engine5.stats().max_inflight_phases));
  return 0;
}
