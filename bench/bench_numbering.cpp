// F2 — Figure 2 reproduction: satisfactory vs unsatisfactory numberings.
//
// Prints the S(v) tables and m(v) sequences for the paper's 7-vertex example
// under both numberings of Figure 2, verifies that the greedy renumbering
// algorithm produces a satisfactory numbering, then benchmarks renumbering
// cost across graph sizes (google-benchmark section).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>

#include "bench_gbench_json.hpp"

#include "graph/generators.hpp"
#include "graph/numbering.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "trace/report.hpp"

namespace {

using namespace df;

std::string render_set(const std::set<std::uint32_t>& s) {
  std::ostringstream out;
  out << "{ ";
  for (const auto v : s) {
    out << v << " ";
  }
  out << "}";
  return out.str();
}

void print_figure2() {
  const graph::Dag dag = graph::paper_figure2();

  const graph::Numbering bad =
      graph::make_numbering(dag, graph::paper_figure2a_indices());
  const graph::Numbering good = graph::compute_satisfactory_numbering(dag);

  std::printf("%s\n", trace::machine_summary().c_str());
  std::printf("%s", support::banner("Figure 2(a): unsatisfactory numbering")
                        .c_str());
  support::Table table_a({"v", "S(v)", "m(v)", "prefix?"});
  for (std::uint32_t v = 0; v <= dag.vertex_count(); ++v) {
    const auto s = graph::compute_S(dag, bad, v);
    const bool prefix = s.empty() || (*s.rbegin() == s.size());
    table_a.add_row({std::to_string(v), render_set(s),
                     std::to_string(bad.m[v]), prefix ? "yes" : "NO"});
  }
  std::printf("%s", table_a.render().c_str());
  std::printf("topological=%s satisfactory=%s\n",
              graph::is_topological(dag, bad) ? "yes" : "no",
              graph::is_satisfactory(dag, bad) ? "yes" : "no");

  std::printf("%s", support::banner(
                        "Figure 2(b): satisfactory numbering (greedy output)")
                        .c_str());
  support::Table table_b({"v", "S(v)", "m(v)"});
  for (std::uint32_t v = 0; v <= dag.vertex_count(); ++v) {
    const auto s = graph::compute_S(dag, good, v);
    table_b.add_row(
        {std::to_string(v), render_set(s), std::to_string(good.m[v])});
  }
  std::printf("%s", table_b.render().c_str());
  std::printf("topological=%s satisfactory=%s\n",
              graph::is_topological(dag, good) ? "yes" : "no",
              graph::is_satisfactory(dag, good) ? "yes" : "no");
  std::printf(
      "paper: m sequence [3, 3, 4, 5, 5, 6, 7, 7]; measured above.\n\n");
}

void BM_renumber_layered(benchmark::State& state) {
  support::Rng rng(99);
  const auto layers = static_cast<std::uint32_t>(state.range(0));
  const graph::Dag dag = graph::layered(layers, 16, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::compute_satisfactory_numbering(dag));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dag.vertex_count()));
}
BENCHMARK(BM_renumber_layered)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_renumber_random(benchmark::State& state) {
  support::Rng rng(7);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const graph::Dag dag = graph::random_dag(n, 4.0 / static_cast<double>(n),
                                           rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::compute_satisfactory_numbering(dag));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_renumber_random)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  print_figure2();
  return df::bench::run_benchmarks_with_json(argc, argv, "numbering");
}
