// A1 — ablation: what does the paper's pipelined engine buy over the
// alternatives on the same workload?
//
//   sequential   the phase-at-a-time solution the paper calls less
//                efficient (section 2)
//   lockstep     barrier-parallel within a phase, no cross-phase overlap
//   engine       the paper's algorithm (pipelined, Δ-driven)
//
// All three run the same Δ-workload; sink equivalence is asserted as a side
// effect, so this bench doubles as an end-to-end correctness run.
#include <cstdio>

#include "baseline/lockstep.hpp"
#include "baseline/sequential.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/engine.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/report.hpp"
#include "trace/serializability.hpp"

int main(int argc, char** argv) {
  using namespace df;
  const support::CliFlags flags(argc, argv);
  const std::uint64_t phases = flags.get("phases", std::uint64_t{400});
  const std::uint64_t grain_ns = flags.get("grain_ns", std::uint64_t{5000});
  const std::size_t threads = flags.get("threads", std::uint64_t{2});

  std::printf("A1: executor ablation on the same workload\n");
  std::printf("%s\n", trace::machine_summary().c_str());

  const core::Program program =
      bench::uniform_busywork_program(4, 3, grain_ns, /*seed=*/11);

  baseline::SequentialExecutor sequential(program);
  sequential.run(phases, nullptr);

  baseline::LockstepExecutor lockstep(program, threads);
  lockstep.run(phases, nullptr);

  core::EngineOptions options;
  options.threads = threads;
  core::Engine engine(program, options);
  engine.run(phases, nullptr);

  const auto seq_vs_lockstep =
      trace::compare_sinks(sequential.sinks(), lockstep.sinks());
  const auto seq_vs_engine =
      trace::compare_sinks(sequential.sinks(), engine.sinks());
  std::printf("serializability: lockstep %s, engine %s\n",
              seq_vs_lockstep.equivalent ? "EQUIVALENT" : "DIVERGENT",
              seq_vs_engine.equivalent ? "EQUIVALENT" : "DIVERGENT");

  support::Table table({"executor", "wall_ms", "pairs/s", "vs_sequential"});
  const double base = sequential.stats().wall_seconds;
  const auto row = [&](const char* name, const core::ExecStats& stats) {
    table.add_row({name, support::Table::num(stats.wall_seconds * 1e3, 1),
                   support::Table::num(stats.pairs_per_second(), 0),
                   support::Table::num(base / stats.wall_seconds, 2) + "x"});
    bench::JsonLine("engines", name)
        .config("phases", phases)
        .config("grain_ns", grain_ns)
        .config("threads", static_cast<std::uint64_t>(threads))
        .metric("wall_ms", stats.wall_seconds * 1e3)
        .metric("pairs_per_sec", stats.pairs_per_second())
        .metric("speedup_vs_sequential", base / stats.wall_seconds)
        .emit();
  };
  row("sequential", sequential.stats());
  row("lockstep", lockstep.stats());
  row("engine (pipelined)", engine.stats());
  std::printf("%s", table.render().c_str());
  std::printf(
      "expected shape: engine >= lockstep >= sequential on multi-core "
      "hardware; all equal within noise on one core.\n");
  return 0;
}
