// T1 — the paper's section 4 measurement.
//
// "On a dual-processor machine running Solaris, we have found that identical
// computations see a speedup of approximately 50% when two computation
// threads are running, compared to the speed when a single computation
// thread is running."
//
// This harness runs the same identical-computations workload with 1 and 2
// (and more) computation threads and prints the speedup series. On a
// machine with >= 2 hardware threads the 2-thread row reproduces the
// paper's ~1.5x; with more cores the series shows the predicted
// near-linear growth while vertex work dominates bookkeeping.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/engine.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/report.hpp"

int main(int argc, char** argv) {
  using namespace df;
  const support::CliFlags flags(argc, argv);
  const std::uint64_t grain_ns = flags.get("grain_ns", std::uint64_t{20000});
  const std::uint64_t phases = flags.get("phases", std::uint64_t{200});
  const std::uint64_t layers = flags.get("layers", std::uint64_t{4});
  const std::uint64_t width = flags.get("width", std::uint64_t{4});
  const std::uint64_t max_threads =
      flags.get("max_threads", std::uint64_t{8});
  const std::uint64_t repeats = flags.get("repeats", std::uint64_t{3});

  std::printf("T1: speedup vs computation threads (paper section 4)\n");
  std::printf("%s\n", trace::machine_summary().c_str());
  std::printf(
      "workload: %llux%llu layered busywork DAG, grain %llu ns/vertex, "
      "%llu phases, best of %llu runs\n",
      static_cast<unsigned long long>(layers),
      static_cast<unsigned long long>(width),
      static_cast<unsigned long long>(grain_ns),
      static_cast<unsigned long long>(phases),
      static_cast<unsigned long long>(repeats));

  const core::Program program = bench::uniform_busywork_program(
      static_cast<std::uint32_t>(layers), static_cast<std::uint32_t>(width),
      grain_ns, /*seed=*/1);

  support::Table table({"threads", "wall_ms", "pairs/s", "speedup",
                        "efficiency", "bookkeeping%"});
  double base_ms = 0.0;
  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    double best_ms = 1e300;
    core::ExecStats best_stats;
    for (std::uint64_t r = 0; r < repeats; ++r) {
      core::EngineOptions options;
      options.threads = threads;
      core::Engine engine(program, options);
      engine.run(phases, nullptr);
      const auto stats = engine.stats();
      if (stats.wall_seconds * 1e3 < best_ms) {
        best_ms = stats.wall_seconds * 1e3;
        best_stats = stats;
      }
    }
    if (threads == 1) {
      base_ms = best_ms;
    }
    const double speedup = base_ms / best_ms;
    const double total_ns = static_cast<double>(best_stats.compute_ns +
                                                best_stats.bookkeeping_ns);
    table.add_row(
        {support::Table::num(static_cast<std::uint64_t>(threads)),
         support::Table::num(best_ms, 1),
         support::Table::num(best_stats.pairs_per_second(), 0),
         support::Table::num(speedup, 2) + "x",
         support::Table::num(speedup / static_cast<double>(threads), 2),
         support::Table::num(
             total_ns <= 0.0 ? 0.0
                             : 100.0 *
                                   static_cast<double>(
                                       best_stats.bookkeeping_ns) /
                                   total_ns,
             1)});
    bench::JsonLine("speedup", "thread_sweep")
        .config("threads", static_cast<std::uint64_t>(threads))
        .config("phases", phases)
        .config("grain_ns", grain_ns)
        .config("layers", layers)
        .config("width", width)
        .metric("wall_ms", best_ms)
        .metric("pairs_per_sec", best_stats.pairs_per_second())
        .metric("speedup", speedup)
        .metric("bookkeeping_pct",
                total_ns <= 0.0
                    ? 0.0
                    : 100.0 *
                          static_cast<double>(best_stats.bookkeeping_ns) /
                          total_ns)
        .emit();
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "paper: 2 threads => ~1.5x on a 2-CPU machine; expect ~1.0x on a "
      "single-core container.\n");
  return 0;
}
