// A2 — micro-benchmarks of the data structures behind the engine
// (google-benchmark): run-queue operations, lock acquisition, scheduler
// bookkeeping per pair, rng and value plumbing. These quantify the
// "computations performed to maintain the data structures" that the paper's
// speedup prediction is conditioned on.
#include <benchmark/benchmark.h>

#include <mutex>

#include "bench_gbench_json.hpp"

#include "concurrency/blocking_queue.hpp"
#include "concurrency/sharded_counter.hpp"
#include "concurrency/spsc_ring.hpp"
#include "concurrency/ws_deque.hpp"
#include "core/dispatch.hpp"
#include "core/scheduler.hpp"
#include "core/sharded_scheduler.hpp"
#include "event/value.hpp"
#include "graph/generators.hpp"
#include "graph/numbering.hpp"
#include "graph/partition.hpp"
#include "support/rng.hpp"

namespace {

using namespace df;

void BM_blocking_queue_push_pop(benchmark::State& state) {
  conc::BlockingQueue<int> queue;
  for (auto _ : state) {
    queue.push(1);
    benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_blocking_queue_push_pop);

void BM_spsc_ring_push_pop(benchmark::State& state) {
  conc::SpscRing<int> ring(1024);
  for (auto _ : state) {
    ring.push(1);
    benchmark::DoNotOptimize(ring.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_spsc_ring_push_pop);

/// Owner-side hot path of the work-stealing deque: one release-fenced push
/// plus one LIFO pop (interior path — no CAS, no lock). Compare against
/// BM_blocking_queue_push_pop: this is the per-pair dispatch cost the
/// stealing mode substitutes for the central queue's mutex round-trip.
void BM_ws_deque_push_pop(benchmark::State& state) {
  conc::WsDeque<int> deque(1024);
  for (auto _ : state) {
    int item = 1;
    deque.push(item);
    benchmark::DoNotOptimize(deque.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ws_deque_push_pop);

/// Thief-side cost: seq_cst fence + top CAS + slot handshake per steal
/// (uncontended here — hw_concurrency=1 on this box; contended behavior is
/// covered by the TSan stress suite and the engine-level dispatch rows).
void BM_ws_deque_steal(benchmark::State& state) {
  conc::WsDeque<int> deque(1024);
  for (auto _ : state) {
    int item = 1;
    deque.push(item);
    benchmark::DoNotOptimize(deque.steal());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ws_deque_steal);

/// Central-vs-stealing dispatch, batch round-trip of `Arg` items through
/// one producer/consumer (the engine's enqueue_ready -> worker acquire
/// cycle without execution). Central pays one queue-mutex acquisition per
/// batch plus one per pop; stealing pays owner pushes/pops only.
void BM_dispatch_batch_central(benchmark::State& state) {
  const auto batch_n = static_cast<std::size_t>(state.range(0));
  conc::BlockingQueue<int> queue;
  std::vector<int> batch;
  for (auto _ : state) {
    batch.assign(batch_n, 1);
    queue.push_all(batch);
    for (std::size_t i = 0; i < batch_n; ++i) {
      benchmark::DoNotOptimize(queue.pop());
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch_n));
}
BENCHMARK(BM_dispatch_batch_central)->Arg(1)->Arg(16)->Arg(256);

void BM_dispatch_batch_steal(benchmark::State& state) {
  const auto batch_n = static_cast<std::size_t>(state.range(0));
  core::StealDispatch<int> dispatch(/*workers=*/1, /*deque_capacity=*/512,
                                    /*chunk=*/0);
  std::vector<int> batch;
  for (auto _ : state) {
    batch.assign(batch_n, 1);
    dispatch.push_batch(batch, /*producer=*/0);
    for (std::size_t i = 0; i < batch_n; ++i) {
      benchmark::DoNotOptimize(dispatch.acquire(0, [] {}));
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch_n));
}
BENCHMARK(BM_dispatch_batch_steal)->Arg(1)->Arg(16)->Arg(256);

void BM_mutex_lock_unlock(benchmark::State& state) {
  std::mutex mutex;
  for (auto _ : state) {
    mutex.lock();
    benchmark::DoNotOptimize(&mutex);
    mutex.unlock();
  }
}
BENCHMARK(BM_mutex_lock_unlock);

void BM_sharded_counter_add(benchmark::State& state) {
  conc::ShardedCounter counter;
  for (auto _ : state) {
    counter.add();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_sharded_counter_add);

/// Full scheduler bookkeeping cost per vertex-phase pair on a chain: one
/// start_phase + N finish_execution calls per phase, with fresh vectors
/// per call (the seed implementation's allocation profile; the removed
/// seed-compat wrappers behaved exactly like this).
void BM_scheduler_pair_bookkeeping(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const graph::Dag dag = graph::chain(n);
  const graph::Numbering numbering =
      graph::compute_satisfactory_numbering(dag);
  std::uint64_t pairs = 0;
  for (auto _ : state) {
    core::Scheduler scheduler(numbering.m);
    std::vector<event::InputBundle> bundles(1);
    std::vector<core::Scheduler::ReadyPair> queue;
    scheduler.start_phase(1, std::span(bundles), queue);
    while (!queue.empty()) {
      core::Scheduler::ReadyPair pair = std::move(queue.back());
      queue.pop_back();
      std::vector<core::Scheduler::Delivery> deliveries;
      if (pair.vertex < n) {
        deliveries.push_back(core::Scheduler::Delivery{
            pair.vertex + 1, 0, event::Value(1.0)});
      }
      std::vector<core::Scheduler::ReadyPair> ready;
      scheduler.finish_execution(pair.vertex, pair.phase,
                                 std::span(deliveries), {}, ready);
      for (auto& r : ready) {
        queue.push_back(std::move(r));
      }
      ++pairs;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
}
BENCHMARK(BM_scheduler_pair_bookkeeping)->Arg(8)->Arg(64)->Arg(512);

/// Same workload through the flat buffer-reuse API the engine uses: spans
/// for deliveries, a caller-owned ready buffer, and the executed bundle
/// recycled into the scheduler's pool (zero allocations at steady state).
void BM_scheduler_pair_bookkeeping_reuse(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const graph::Dag dag = graph::chain(n);
  const graph::Numbering numbering =
      graph::compute_satisfactory_numbering(dag);
  std::uint64_t pairs = 0;
  core::Scheduler scheduler(numbering.m);
  std::vector<event::InputBundle> bundles(1);
  std::vector<core::Scheduler::ReadyPair> queue;
  std::vector<core::Scheduler::ReadyPair> ready;
  std::vector<core::Scheduler::Delivery> deliveries;
  event::PhaseId phase = 0;
  for (auto _ : state) {
    bundles.assign(1, event::InputBundle{});
    scheduler.start_phase(++phase, std::span(bundles), queue);
    while (!queue.empty()) {
      core::Scheduler::ReadyPair pair = std::move(queue.back());
      queue.pop_back();
      deliveries.clear();
      if (pair.vertex < n) {
        deliveries.push_back(core::Scheduler::Delivery{
            pair.vertex + 1, 0, event::Value(1.0)});
      }
      ready.clear();
      scheduler.finish_execution(pair.vertex, pair.phase,
                                 std::span(deliveries),
                                 std::move(pair.bundle), ready);
      for (auto& r : ready) {
        queue.push_back(std::move(r));
      }
      ++pairs;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
}
BENCHMARK(BM_scheduler_pair_bookkeeping_reuse)->Arg(8)->Arg(64)->Arg(512);

/// The staged-delivery drain path: the same chain workload, but with a
/// window of phases in flight so each finish_execution_batch call applies
/// one staged finish per active phase — one frontier/promotion/collect
/// pass amortized over the whole batch, as in Engine::drain_staged.
void BM_scheduler_pair_bookkeeping_staged_batch(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  constexpr std::size_t kWindow = 16;
  const graph::Dag dag = graph::chain(n);
  const graph::Numbering numbering =
      graph::compute_satisfactory_numbering(dag);
  std::uint64_t pairs = 0;
  core::Scheduler scheduler(numbering.m);
  scheduler.reserve_steady_state(kWindow, kWindow * 2);
  std::vector<event::InputBundle> bundles(1);
  std::vector<core::Scheduler::ReadyPair> queue;
  std::vector<core::Scheduler::ReadyPair> ready;
  std::vector<core::Scheduler::StagedFinish> batch;
  event::PhaseId phase = 0;
  for (auto _ : state) {
    // Keep the phase window full: a chain holds one ready pair per active
    // phase, so the batch below carries ~kWindow finishes.
    while (scheduler.active_phase_count() < kWindow) {
      bundles.assign(1, event::InputBundle{});
      scheduler.start_phase(++phase, std::span(bundles), queue);
    }
    batch.clear();
    for (auto& pair : queue) {
      core::Scheduler::StagedFinish staged;
      staged.vertex = pair.vertex;
      staged.phase = pair.phase;
      if (pair.vertex < n) {
        staged.deliveries.push_back(core::Scheduler::Delivery{
            pair.vertex + 1, 0, event::Value(1.0)});
      }
      staged.recycled = std::move(pair.bundle);
      batch.push_back(std::move(staged));
    }
    pairs += batch.size();
    queue.clear();
    ready.clear();
    scheduler.finish_execution_batch(std::span(batch), ready);
    for (auto& r : ready) {
      queue.push_back(std::move(r));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
}
BENCHMARK(BM_scheduler_pair_bookkeeping_staged_batch)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512);

/// The sharded scheduler's two-stage drain on the same chain workload:
/// apply_finish_batch flips bits under per-shard locks, collect composes
/// the frontier and issues ready pairs. Args are {chain_n, shards}; the
/// shard count therefore appears in every emitted JSON row name. This is
/// single-threaded scheduler cost only — sharding buys lock parallelism
/// at engine level (bench_pipeline --shards), so the interesting number
/// here is the sharding overhead vs the staged_batch rows above.
void BM_scheduler_pair_bookkeeping_sharded(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kWindow = 16;
  const graph::Dag dag = graph::chain(n);
  const graph::Numbering numbering =
      graph::compute_satisfactory_numbering(dag);
  std::uint64_t pairs = 0;
  core::ShardedScheduler scheduler(
      numbering.m,
      graph::make_shard_map(graph::partition_balanced(numbering, shards)),
      kWindow);
  scheduler.reserve_steady_state(kWindow * 2);
  std::vector<event::InputBundle> bundles(1);
  std::vector<core::Scheduler::ReadyPair> queue;
  std::vector<core::Scheduler::ReadyPair> ready;
  std::vector<core::Scheduler::StagedFinish> batch;
  event::PhaseId phase = 0;
  for (auto _ : state) {
    while (scheduler.active_phase_count() < kWindow) {
      bundles.assign(1, event::InputBundle{});
      scheduler.start_phase(++phase, std::span(bundles), queue);
    }
    batch.clear();
    for (auto& pair : queue) {
      core::Scheduler::StagedFinish staged;
      staged.vertex = pair.vertex;
      staged.phase = pair.phase;
      if (pair.vertex < n) {
        staged.deliveries.push_back(core::Scheduler::Delivery{
            pair.vertex + 1, 0, event::Value(1.0)});
      }
      staged.recycled = std::move(pair.bundle);
      batch.push_back(std::move(staged));
    }
    pairs += batch.size();
    queue.clear();
    ready.clear();
    scheduler.apply_finish_batch(std::span(batch));
    scheduler.collect(ready);
    for (auto& r : ready) {
      queue.push_back(std::move(r));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pairs));
}
BENCHMARK(BM_scheduler_pair_bookkeeping_sharded)
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({512, 1})
    ->Args({512, 4})
    ->Args({512, 8});

void BM_rng_next_normal(benchmark::State& state) {
  support::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_normal());
  }
}
BENCHMARK(BM_rng_next_normal);

void BM_value_copy_double(benchmark::State& state) {
  const event::Value value(3.14);
  for (auto _ : state) {
    event::Value copy = value;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_value_copy_double);

}  // namespace

int main(int argc, char** argv) {
  return df::bench::run_benchmarks_with_json(argc, argv, "micro");
}
