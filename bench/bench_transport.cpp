// E5 (extension) — paper section 6 future work, made real: partitioned
// execution over serialized channels (distrib::TransportEngine).
//
// Where bench_partition *simulates* a cluster with a timing model, this
// bench runs the real thing: one engine per partition block, wire-encoded
// frames crossing every boundary over either the in-process ring channel
// or loopback TCP. Sweeps machine count x channel kind against the
// sequential reference and prints phase throughput plus the transport's
// own accounting (frames, bytes, remote fraction). Sink output is checked
// against the sequential reference on every row.
//
// --smoke runs a small fixed configuration over both channel kinds and
// exits non-zero on any mismatch — registered as a ctest smoke test with
// the `transport` label, so every CI configuration (including TSan)
// executes real socket traffic.
//
// --engine-threads=K and --shards=K configure the per-block engines (two-
// level parallelism: machines x engine_threads workers in total); both are
// recorded in every JSON row alongside hw_concurrency so a single-core CI
// box's rows are not mistaken for a multicore measurement.
#include <cstdio>
#include <thread>

#include "baseline/sequential.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "distrib/transport.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/report.hpp"
#include "trace/serializability.hpp"

int main(int argc, char** argv) {
  using namespace df;
  const support::CliFlags flags(argc, argv);
  const bool smoke = flags.get("smoke", false);
  const std::uint64_t phases =
      flags.get("phases", smoke ? std::uint64_t{80} : std::uint64_t{2000});
  const std::uint64_t grain_ns =
      flags.get("grain_ns", smoke ? std::uint64_t{0} : std::uint64_t{2000});
  const std::uint64_t layers = flags.get("layers", std::uint64_t{6});
  const std::uint64_t width = flags.get("width", std::uint64_t{4});
  const std::size_t engine_threads =
      flags.get("engine-threads", std::uint64_t{1});
  const std::size_t shards = flags.get("shards", std::uint64_t{1});
  if (engine_threads == 0 || shards == 0) {
    std::printf("--engine-threads and --shards must be >= 1\n");
    return 2;
  }
  // Third axis of the per-block engine knob matrix: ready-pair dispatch.
  const std::string dispatch_name =
      flags.get("dispatch", std::string{"central"});
  if (dispatch_name != "central" && dispatch_name != "steal") {
    std::printf("--dispatch must be 'central' or 'steal', got %s\n",
                dispatch_name.c_str());
    return 2;
  }
  const auto dispatch = dispatch_name == "steal"
                            ? core::EngineOptions::Dispatch::kWorkStealing
                            : core::EngineOptions::Dispatch::kCentral;
  // Fault-tolerance overhead axis: checkpoint every K completed phases
  // (0 = off, the default). A non-zero K prices quiesce + snapshot +
  // egress retention on the same rows as the plain run, so the overhead
  // is a column, not a separate benchmark.
  const std::size_t checkpoint_every =
      flags.get("checkpoint-every", std::uint64_t{0});
  if (checkpoint_every > 0 && shards > 1) {
    std::printf("--checkpoint-every requires --shards=1 "
                "(snapshots need the flat scheduler)\n");
    return 2;
  }
  const std::uint64_t hw_concurrency =
      static_cast<std::uint64_t>(std::thread::hardware_concurrency());

  std::printf("E5: real partitioned transport (paper section 6)\n");
  std::printf("%s\n", trace::machine_summary().c_str());

  const core::Program program = bench::uniform_busywork_program(
      static_cast<std::uint32_t>(layers), static_cast<std::uint32_t>(width),
      grain_ns, 29);

  baseline::SequentialExecutor reference(program);
  reference.run(phases, nullptr);
  const double reference_s = reference.stats().wall_seconds;

  bench::JsonLine("transport", "sequential_reference")
      .config("phases", phases)
      .config("grain_ns", grain_ns)
      .config("vertices", static_cast<std::uint64_t>(
                              program.numbering.size()))
      .config("hw_concurrency", hw_concurrency)
      .metric("phases_per_sec", reference.stats().phases_per_second())
      .metric("pairs_per_sec", reference.stats().pairs_per_second())
      .emit();

  support::Table table({"machines", "channel", "phases_per_s", "speedup",
                        "frames", "kframe_bytes", "remote_frac"});
  bool ok = true;

  for (const std::size_t machines :
       smoke ? std::vector<std::size_t>{2}
             : std::vector<std::size_t>{2, 4}) {
    for (const distrib::ChannelKind kind :
         {distrib::ChannelKind::kInProcess, distrib::ChannelKind::kSocket}) {
      const char* kind_name =
          kind == distrib::ChannelKind::kInProcess ? "inproc" : "socket";
      distrib::TransportOptions options;
      options.machines = machines;
      options.channel = kind;
      options.engine_threads = engine_threads;
      options.scheduler_shards = shards;
      options.dispatch = dispatch;
      options.checkpoint_every = checkpoint_every;
      distrib::TransportEngine transport(program, options);
      transport.run(phases, nullptr);

      const auto stats = transport.stats();
      const auto& tstats = transport.transport_stats();
      const double remote_frac =
          stats.messages_delivered == 0
              ? 0.0
              : static_cast<double>(tstats.remote_messages) /
                    static_cast<double>(stats.messages_delivered);
      table.add_row(
          {support::Table::num(static_cast<std::uint64_t>(machines)),
           kind_name,
           support::Table::num(stats.phases_per_second(), 0),
           support::Table::num(reference_s / stats.wall_seconds, 2) + "x",
           support::Table::num(tstats.frames_sent),
           support::Table::num(
               static_cast<double>(tstats.bytes_sent) / 1e3, 1),
           support::Table::num(remote_frac, 2)});
      bench::JsonLine("transport", std::string("transport_") + kind_name)
          .config("machines", static_cast<std::uint64_t>(machines))
          .config("channel", kind_name)
          .config("phases", phases)
          .config("grain_ns", grain_ns)
          .config("vertices", static_cast<std::uint64_t>(
                                  program.numbering.size()))
          .config("engine_threads",
                  static_cast<std::uint64_t>(engine_threads))
          .config("shards", static_cast<std::uint64_t>(shards))
          .config("dispatch", dispatch_name)
          .config("checkpoint_every",
                  static_cast<std::uint64_t>(checkpoint_every))
          .config("hw_concurrency", hw_concurrency)
          .metric("phases_per_sec", stats.phases_per_second())
          .metric("pairs_per_sec", stats.pairs_per_second())
          .metric("speedup_vs_sequential",
                  reference_s / stats.wall_seconds)
          .metric("frames_sent", tstats.frames_sent)
          .metric("bytes_sent", tstats.bytes_sent)
          .metric("batch_frames_sent", tstats.batch_frames_sent)
          .metric("batched_deliveries", tstats.batched_deliveries)
          .metric("frames_per_phase",
                  static_cast<double>(tstats.frames_sent) /
                      static_cast<double>(phases))
          .metric("bytes_per_phase",
                  static_cast<double>(tstats.bytes_sent) /
                      static_cast<double>(phases))
          .metric("remote_messages", tstats.remote_messages)
          .metric("remote_frac", remote_frac)
          .metric("steals_ok", stats.steals_ok)
          .metric("steals_empty", stats.steals_empty)
          .metric("parks", stats.parks)
          .metric("checkpoints_taken", tstats.checkpoints_taken)
          .metric("checkpoint_bytes", tstats.checkpoint_bytes)
          .emit();

      const auto report =
          trace::compare_sinks(reference.sinks(), transport.sinks());
      if (!report.equivalent) {
        std::printf("SERIALIZABILITY VIOLATION (machines=%zu, %s): %s\n",
                    machines, kind_name, report.summary().c_str());
        ok = false;
      }
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "expected shape: with a real per-vertex grain the partitioned run "
      "overlaps blocks across phases (pipeline parallelism), so speedup "
      "approaches the block count while the channel cost stays small next "
      "to the grain; at grain_ns=0 the wire cost dominates and the rows "
      "price exactly that overhead — frames and bytes per phase are the "
      "paper's 'network traffic' axis, measured instead of simulated.\n");
  return ok ? 0 : 1;
}
