// T3 — the paper's section 1 efficiency argument.
//
// "If one in a million transactions is anomalous then the rate of events
// generated using the second option [emit only anomalies] is only a
// millionth of that generated using the first option [emit per input]."
//
// Sweep the anomaly rate and compare the Δ-executor against the eager
// "obvious solution" baseline on an anomaly-detection chain: messages past
// the detector should scale with the anomaly rate under Δ-execution and
// stay constant (one per edge per phase) under eager execution.
#include <cstdio>

#include "baseline/eager.hpp"
#include "baseline/sequential.hpp"
#include "bench_json.hpp"
#include "model/sources.hpp"
#include "model/synthetic.hpp"
#include "spec/builder.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/report.hpp"

namespace {

using namespace df;

/// anomaly chain: sparse anomaly source -> forward -> forward (the
/// "downstream models" that should only wake on anomalies).
core::Program anomaly_chain(double rate, std::uint64_t seed) {
  spec::GraphBuilder b;
  const auto src = b.add("anomalies",
                         model::factory_of<model::SparseEventSource>(
                             rate, event::Value(1.0)));
  const auto m1 = b.add("model1", model::factory_of<model::ForwardModule>());
  const auto m2 = b.add("model2", model::factory_of<model::ForwardModule>());
  b.connect(src, m1).connect(m1, m2);
  return std::move(b).build(seed);
}

}  // namespace

int main(int argc, char** argv) {
  const support::CliFlags flags(argc, argv);
  const std::uint64_t phases = flags.get("phases", std::uint64_t{100000});

  std::printf("T3: delta vs eager traffic as anomaly rate falls "
              "(paper section 1)\n");
  std::printf("%s\n", trace::machine_summary().c_str());
  std::printf("workload: 3-vertex anomaly chain, %llu phases\n",
              static_cast<unsigned long long>(phases));

  support::Table table({"anomaly_rate", "delta_msgs", "eager_msgs",
                        "msg_ratio", "delta_execs", "eager_execs",
                        "exec_ratio"});
  for (const double rate : {1e-1, 1e-2, 1e-3, 1e-4}) {
    baseline::SequentialExecutor delta(anomaly_chain(rate, 7));
    baseline::EagerExecutor eager(anomaly_chain(rate, 7));
    delta.run(phases, nullptr);
    eager.run(phases, nullptr);
    const auto d = delta.stats();
    const auto e = eager.stats();
    table.add_row(
        {support::Table::num(rate, 5), support::Table::num(d.messages_delivered),
         support::Table::num(e.messages_delivered),
         support::Table::num(
             static_cast<double>(e.messages_delivered) /
                 std::max<double>(1.0,
                                  static_cast<double>(d.messages_delivered)),
             1) +
             "x",
         support::Table::num(d.executed_pairs),
         support::Table::num(e.executed_pairs),
         support::Table::num(static_cast<double>(e.executed_pairs) /
                                 static_cast<double>(d.executed_pairs),
                             1) +
             "x"});
    df::bench::JsonLine("sparsity", "anomaly_rate_sweep")
        .config("anomaly_rate", rate)
        .config("phases", phases)
        .metric("delta_msgs", d.messages_delivered)
        .metric("eager_msgs", e.messages_delivered)
        .metric("delta_execs", d.executed_pairs)
        .metric("eager_execs", e.executed_pairs)
        .emit();
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "paper: delta traffic ~ rate x eager traffic — at rate r the message "
      "ratio is ~1/r (the one-in-a-million argument scaled down).\n");
  return 0;
}
