// Wire-path micro-bench: what one cross-partition delivery costs in
// encode time, decode time, and bytes, for each wire generation:
//
//   * v1_single — the original one-frame-per-delivery format (kept as a
//     decode-compat fixture): 21-byte header plus fixed-width value
//     encoding, decoded through the Frame-level decoder;
//   * v2_single — wire v2 framing with dense value encoding (varint ints,
//     u8-length short strings) but still one delivery per frame;
//   * v2_batch — the transport's real send path: kDeliveryBatch frames
//     coalescing `batch` deliveries behind a single header with
//     varint-delta addressing, decoded via the streaming BatchReader
//     (validate + decode straight into a recycled Delivery, the engine's
//     zero-copy ingestion shape).
//
// The corpus mirrors typical cross-partition traffic: mostly small ints
// and doubles, some short strings and small vectors, destination indices
// in a working set so the batch deltas stay small. Rows are emitted via
// bench_json.hpp for the BENCH_seed_vs_flat.json trajectory; the v1-vs-v2
// bytes_per_delivery and decode ratios are the numbers ISSUE acceptance
// tracks. Runs in well under a second by default, so it doubles as the
// `smoke_bench_wire` ctest entry (transport label).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/delivery.hpp"
#include "distrib/wire.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "trace/report.hpp"

namespace {

using namespace df;
using distrib::wire::DecodeStatus;

std::vector<core::Delivery> make_corpus(std::size_t count,
                                        std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<core::Delivery> corpus(count);
  std::uint32_t index = 100;
  for (core::Delivery& d : corpus) {
    // Destinations drift through a small working set, as deliveries bound
    // for one partition block do.
    index += static_cast<std::uint32_t>(rng.next_below(8));
    d.to_index = index;
    d.to_port = static_cast<graph::Port>(rng.next_below(4));
    switch (rng.next_below(10)) {
      case 0:
        d.value = event::Value(std::string("update"));
        break;
      case 1: {
        std::vector<double> v(4);
        for (double& x : v) {
          x = rng.next_normal();
        }
        d.value = event::Value(std::move(v));
        break;
      }
      case 2:
      case 3:
      case 4:
        d.value = event::Value(rng.next_int(-1000, 1000));
        break;
      default:
        d.value = event::Value(rng.next_normal());
        break;
    }
  }
  return corpus;
}

double ns_since(std::chrono::steady_clock::time_point start,
                std::uint64_t ops) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         static_cast<double>(ops);
}

struct Row {
  std::string name;
  double encode_ns = 0;
  double decode_ns = 0;
  double bytes_per_delivery = 0;
  std::uint64_t frames = 0;
};

// Checksum over decoded deliveries so the decode loops cannot be dead-code
// eliminated, compared across rows so all three paths provably decoded the
// same corpus.
std::uint64_t fold(std::uint64_t acc, const core::Delivery& d) {
  return acc * 31 + d.to_index + d.to_port;
}

}  // namespace

int main(int argc, char** argv) {
  const support::CliFlags flags(argc, argv);
  const bool smoke = flags.get("smoke", false);
  const std::uint64_t count =
      flags.get("deliveries", smoke ? std::uint64_t{20000}
                                    : std::uint64_t{200000});
  const std::uint64_t reps = flags.get("reps", std::uint64_t{5});
  const std::uint64_t batch = flags.get("batch", std::uint64_t{64});

  std::printf("wire-path micro-bench: per-delivery cost, v1 vs v2\n");
  std::printf("%s\n", trace::machine_summary().c_str());

  const std::vector<core::Delivery> corpus = make_corpus(count, 71);
  const std::uint64_t ops = count * reps;
  std::vector<Row> rows;
  std::vector<std::uint64_t> checksums;

  // --- v1_single: one frame per delivery, fixed-width values ---------------
  {
    Row row{"v1_single"};
    std::vector<std::vector<std::uint8_t>> frames(corpus.size());
    auto start = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
      for (std::size_t i = 0; i < corpus.size(); ++i) {
        distrib::wire::encode_delivery_v1(i, 3, corpus[i], frames[i]);
      }
    }
    row.encode_ns = ns_since(start, ops);
    std::uint64_t bytes = 0;
    for (const auto& f : frames) {
      bytes += f.size();
    }
    row.bytes_per_delivery =
        static_cast<double>(bytes) / static_cast<double>(count);
    row.frames = count;

    std::uint64_t checksum = 0;
    distrib::wire::Frame decoded;
    start = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
      checksum = 0;
      for (const auto& f : frames) {
        DF_CHECK(distrib::wire::decode_frame_v1(f, decoded) ==
                     DecodeStatus::kOk,
                 "v1 decode failed");
        checksum = fold(checksum, decoded.delivery);
      }
    }
    row.decode_ns = ns_since(start, ops);
    checksums.push_back(checksum);
    rows.push_back(row);
  }

  // --- v2_single: one frame per delivery, dense values ---------------------
  {
    Row row{"v2_single"};
    std::vector<std::vector<std::uint8_t>> frames(corpus.size());
    auto start = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
      for (std::size_t i = 0; i < corpus.size(); ++i) {
        distrib::wire::encode_delivery(i, 3, corpus[i], frames[i]);
      }
    }
    row.encode_ns = ns_since(start, ops);
    std::uint64_t bytes = 0;
    for (const auto& f : frames) {
      bytes += f.size();
    }
    row.bytes_per_delivery =
        static_cast<double>(bytes) / static_cast<double>(count);
    row.frames = count;

    std::uint64_t checksum = 0;
    distrib::wire::Frame decoded;
    start = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
      checksum = 0;
      for (const auto& f : frames) {
        DF_CHECK(distrib::wire::decode_frame(f, decoded) == DecodeStatus::kOk,
                 "v2 decode failed");
        checksum = fold(checksum, decoded.delivery);
      }
    }
    row.decode_ns = ns_since(start, ops);
    checksums.push_back(checksum);
    rows.push_back(row);
  }

  // --- v2_batch: the transport's real path ---------------------------------
  {
    Row row{"v2_batch"};
    std::vector<std::vector<std::uint8_t>> frames;
    auto start = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
      frames.clear();
      distrib::wire::BatchEncoder encoder;
      std::uint64_t seq = 0;
      for (const core::Delivery& d : corpus) {
        encoder.add(d);
        if (encoder.pending() == batch) {
          frames.emplace_back();
          encoder.finish(seq++, 3, frames.back());
        }
      }
      if (encoder.pending() > 0) {
        frames.emplace_back();
        encoder.finish(seq++, 3, frames.back());
      }
    }
    row.encode_ns = ns_since(start, ops);
    std::uint64_t bytes = 0;
    for (const auto& f : frames) {
      bytes += f.size();
    }
    row.bytes_per_delivery =
        static_cast<double>(bytes) / static_cast<double>(count);
    row.frames = frames.size();

    // Decode the way the engine ingests: validate the frame (the reader
    // thread's bounds-checked walk), then stream deliveries into one
    // recycled Delivery via BatchReader.
    std::uint64_t checksum = 0;
    core::Delivery slot;
    start = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) {
      checksum = 0;
      for (const auto& f : frames) {
        DF_CHECK(distrib::wire::validate_frame(f) == DecodeStatus::kOk,
                 "v2 batch validate failed");
        distrib::wire::BatchReader reader;
        DF_CHECK(reader.open(f) == DecodeStatus::kOk, "v2 batch open failed");
        while (reader.remaining() > 0) {
          DF_CHECK(reader.next(slot) == DecodeStatus::kOk,
                   "v2 batch decode failed");
          checksum = fold(checksum, slot);
        }
      }
    }
    row.decode_ns = ns_since(start, ops);
    checksums.push_back(checksum);
    rows.push_back(row);
  }

  for (const std::uint64_t checksum : checksums) {
    DF_CHECK(checksum == checksums.front(),
             "wire paths decoded different corpora");
  }

  support::Table table({"path", "encode_ns", "decode_ns", "bytes/delivery",
                        "frames"});
  const double v1_bytes = rows.front().bytes_per_delivery;
  for (const Row& row : rows) {
    table.add_row({row.name, support::Table::num(row.encode_ns, 1),
                   support::Table::num(row.decode_ns, 1),
                   support::Table::num(row.bytes_per_delivery, 1),
                   support::Table::num(row.frames)});
    bench::JsonLine("wire", row.name)
        .config("deliveries", count)
        .config("reps", reps)
        .config("batch", batch)
        .config("hw_concurrency",
                static_cast<std::uint64_t>(
                    std::thread::hardware_concurrency()))
        .metric("encode_ns_per_delivery", row.encode_ns)
        .metric("decode_ns_per_delivery", row.decode_ns)
        .metric("bytes_per_delivery", row.bytes_per_delivery)
        .metric("frames", row.frames)
        .metric("bytes_vs_v1", row.bytes_per_delivery / v1_bytes)
        .emit();
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "expected shape: v2_single already shrinks bytes/delivery via dense "
      "value tags; v2_batch amortizes the 21-byte header and the length "
      "prefix over the whole batch and decodes through the streaming "
      "reader, so it should win both axes — that per-delivery delta times "
      "remote traffic is exactly the wire overhead bench_transport "
      "measures end to end at grain_ns=0.\n");
  return 0;
}
