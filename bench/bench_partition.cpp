// E4 (extension) — paper section 6 future work: partitioning the
// computation graph across machines.
//
// Simulates a cluster (distrib::ClusterExecutor): per-machine clocks, a
// fixed per-vertex cost, and a per-message network latency for edges that
// cross partitions. Sweeps machine count x partitioner x latency and
// prints the simulated makespan speedup over one machine, plus the edge
// cut each partitioner achieves. Semantics are checked against the
// sequential reference as a side effect.
#include <cstdio>

#include "baseline/sequential.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "distrib/cluster.hpp"
#include "graph/partition.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/report.hpp"
#include "trace/serializability.hpp"

int main(int argc, char** argv) {
  using namespace df;
  const support::CliFlags flags(argc, argv);
  const std::uint64_t phases = flags.get("phases", std::uint64_t{200});
  const std::uint64_t cost_ns =
      flags.get("vertex_cost_ns", std::uint64_t{100000});

  std::printf("E4: simulated graph partitioning across machines "
              "(paper section 6)\n");
  std::printf("%s\n", trace::machine_summary().c_str());

  support::Rng rng(23);
  const graph::Dag shape = graph::layered(6, 4, 2, rng);
  const core::Program program = bench::busywork_over(shape, 0, 29);

  // Reference sinks for the serializability side-check.
  baseline::SequentialExecutor reference(program);
  reference.run(phases, nullptr);

  support::Table table({"machines", "partitioner", "edge_cut",
                        "latency_us", "makespan_ms", "speedup",
                        "util_worst"});
  distrib::ClusterOptions base;
  base.machines = 1;
  base.fixed_vertex_cost_ns = cost_ns;
  distrib::ClusterExecutor single(program, base);
  single.run(phases, nullptr);
  const double base_makespan =
      static_cast<double>(single.cluster_stats().makespan_ns);

  for (const std::size_t machines : {2UL, 4UL, 8UL}) {
    struct Strategy {
      const char* name;
      graph::Partitioning partitioning;
    };
    const graph::Numbering& numbering = program.numbering;
    std::vector<Strategy> strategies;
    strategies.push_back(
        {"balanced", graph::partition_balanced(numbering, machines)});
    strategies.push_back(
        {"min_cut",
         graph::partition_min_cut(program.dag, numbering, machines, 8)});

    for (const Strategy& strategy : strategies) {
      for (const std::uint64_t latency_us : {0ULL, 50ULL, 500ULL}) {
        distrib::ClusterOptions options;
        options.machines = machines;
        options.fixed_vertex_cost_ns = cost_ns;
        options.network_latency_ns = latency_us * 1000;
        options.partitioning = strategy.partitioning;
        distrib::ClusterExecutor cluster(program, options);
        cluster.run(phases, nullptr);

        const auto metrics = graph::evaluate_partitioning(
            program.dag, numbering, strategy.partitioning);
        const auto& cs = cluster.cluster_stats();
        double worst_util = 1.0;
        for (std::size_t m = 0; m < machines; ++m) {
          worst_util = std::min(worst_util, cs.utilisation(m, 1));
        }
        table.add_row(
            {support::Table::num(static_cast<std::uint64_t>(machines)),
             strategy.name,
             support::Table::num(
                 static_cast<std::uint64_t>(metrics.edge_cut)),
             support::Table::num(latency_us),
             support::Table::num(
                 static_cast<double>(cs.makespan_ns) / 1e6, 2),
             support::Table::num(base_makespan /
                                     static_cast<double>(cs.makespan_ns),
                                 2) +
                 "x",
             support::Table::num(worst_util, 2)});
        bench::JsonLine("partition", strategy.name)
            .config("machines", static_cast<std::uint64_t>(machines))
            .config("latency_us", static_cast<std::uint64_t>(latency_us))
            .config("phases", phases)
            .config("vertex_cost_ns", cost_ns)
            .metric("edge_cut", static_cast<std::uint64_t>(metrics.edge_cut))
            .metric("makespan_ms",
                    static_cast<double>(cs.makespan_ns) / 1e6)
            .metric("speedup",
                    base_makespan / static_cast<double>(cs.makespan_ns))
            .metric("util_worst", worst_util)
            .emit();

        const auto report =
            trace::compare_sinks(reference.sinks(), cluster.sinks());
        if (!report.equivalent) {
          std::printf("SERIALIZABILITY VIOLATION: %s\n",
                      report.summary().c_str());
          return 1;
        }
      }
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "expected shape: speedup tracks machine count while latency is small "
      "relative to vertex cost. The cut/balance trade-off is explicit: "
      "min_cut sends fewer network messages but sacrifices load balance "
      "(util_worst), so with cheap networks the balanced partitioner wins — "
      "the tension any real implementation of the paper's future work must "
      "resolve.\n");
  return 0;
}
