// JSON-line reporter for the google-benchmark based binaries: prints the
// normal console table AND one bench_json.hpp line per measured run, so the
// micro benches feed the same merged trajectory as the table-based benches.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_json.hpp"

namespace df::bench {

class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonLineReporter(std::string bench)
      : benchmark::ConsoleReporter(OO_None), bench_(std::move(bench)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;
      }
      JsonLine line(bench_, run.benchmark_name());
      line.metric("ns_per_op", run.GetAdjustedRealTime());
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        line.metric("pairs_per_sec", static_cast<double>(items->second));
      }
      line.emit();
    }
  }

 private:
  std::string bench_;
};

/// Drop-in replacement for BENCHMARK_MAIN() that runs with the JSON-line
/// reporter.
inline int run_benchmarks_with_json(int argc, char** argv,
                                    const char* bench) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  JsonLineReporter reporter{std::string(bench)};
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace df::bench
