// Shared workload builders for the bench binaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "model/synthetic.hpp"
#include "spec/builder.hpp"
#include "support/rng.hpp"

namespace df::bench {

/// The paper's section 4 workload: "identical computations" — a layered DAG
/// in which every vertex spins for `grain_ns` per execution and always
/// forwards, so every vertex executes every phase.
inline core::Program uniform_busywork_program(std::uint32_t layers,
                                              std::uint32_t width,
                                              std::uint64_t grain_ns,
                                              std::uint64_t seed) {
  support::Rng rng(seed);
  const graph::Dag shape = graph::layered(layers, width, 2, rng);
  spec::GraphBuilder b;
  std::vector<graph::VertexId> ids;
  for (graph::VertexId v = 0; v < shape.vertex_count(); ++v) {
    const std::size_t fan_in = shape.in_degree(v);
    if (fan_in == 0) {
      ids.push_back(b.add(shape.name(v),
                          model::factory_of<model::BusyWorkSource>(
                              grain_ns, 1.0)));
    } else {
      ids.push_back(b.add(shape.name(v),
                          model::factory_of<model::BusyWorkModule>(
                              grain_ns, fan_in, 1.0)));
    }
  }
  for (const graph::Edge& e : shape.edges()) {
    b.connect(ids[e.from], e.from_port, ids[e.to], e.to_port);
  }
  return std::move(b).build(seed);
}

/// Busywork over an arbitrary pre-built shape.
inline core::Program busywork_over(const graph::Dag& shape,
                                   std::uint64_t grain_ns,
                                   std::uint64_t seed) {
  spec::GraphBuilder b;
  std::vector<graph::VertexId> ids;
  for (graph::VertexId v = 0; v < shape.vertex_count(); ++v) {
    const std::size_t fan_in = shape.in_degree(v);
    if (fan_in == 0) {
      ids.push_back(b.add(shape.name(v),
                          model::factory_of<model::BusyWorkSource>(
                              grain_ns, 1.0)));
    } else {
      ids.push_back(b.add(shape.name(v),
                          model::factory_of<model::BusyWorkModule>(
                              grain_ns, fan_in, 1.0)));
    }
  }
  for (const graph::Edge& e : shape.edges()) {
    b.connect(ids[e.from], e.from_port, ids[e.to], e.to_port);
  }
  return std::move(b).build(seed);
}

}  // namespace df::bench
