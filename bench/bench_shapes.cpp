// A3 — ablation: graph-shape sensitivity.
//
// Fixed per-phase work budget spread across different topologies: a deep
// chain (no intra-phase parallelism, maximal pipelining), a wide diamond
// (maximal intra-phase parallelism), a layered mesh, and a binary in-tree.
// Shows where the paper's cross-phase pipelining matters most: shapes with
// long critical paths gain the most over the lockstep baseline.
#include <cstdio>

#include "baseline/lockstep.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "core/engine.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/report.hpp"

int main(int argc, char** argv) {
  using namespace df;
  const support::CliFlags flags(argc, argv);
  const std::uint64_t phases = flags.get("phases", std::uint64_t{300});
  const std::size_t threads = flags.get("threads", std::uint64_t{2});
  // Total spin budget per phase is constant; grain adapts to vertex count.
  const std::uint64_t budget_ns =
      flags.get("budget_ns", std::uint64_t{64000});

  std::printf("A3: topology sensitivity at a fixed per-phase work budget\n");
  std::printf("%s\n", trace::machine_summary().c_str());

  support::Rng rng(17);
  struct Shape {
    const char* name;
    graph::Dag dag;
  };
  std::vector<Shape> shapes;
  shapes.push_back({"chain16", graph::chain(16)});
  shapes.push_back({"diamond14", graph::diamond(14)});
  shapes.push_back({"layered4x4", graph::layered(4, 4, 2, rng)});
  shapes.push_back({"intree15", graph::binary_in_tree(4)});

  support::Table table({"shape", "vertices", "depth(levels)", "engine_ms",
                        "lockstep_ms", "engine_gain"});
  for (Shape& shape : shapes) {
    const auto n = static_cast<std::uint64_t>(shape.dag.vertex_count());
    const std::uint64_t grain = budget_ns / n;
    const core::Program program =
        bench::busywork_over(shape.dag, grain, 21);

    core::EngineOptions options;
    options.threads = threads;
    core::Engine engine(program, options);
    engine.run(phases, nullptr);

    baseline::LockstepExecutor lockstep(program, threads);
    lockstep.run(phases, nullptr);

    // Depth = number of topological levels (critical path length).
    std::vector<std::uint32_t> level(shape.dag.vertex_count(), 0);
    std::uint32_t depth = 1;
    for (const graph::Edge& e : shape.dag.edges()) {
      level[e.to] = std::max(level[e.to], level[e.from] + 1);
      depth = std::max(depth, level[e.to] + 1);
    }

    table.add_row(
        {shape.name, support::Table::num(n), support::Table::num(
             static_cast<std::uint64_t>(depth)),
         support::Table::num(engine.stats().wall_seconds * 1e3, 1),
         support::Table::num(lockstep.stats().wall_seconds * 1e3, 1),
         support::Table::num(lockstep.stats().wall_seconds /
                                 engine.stats().wall_seconds,
                             2) +
             "x"});
    bench::JsonLine("shapes", shape.name)
        .config("vertices", n)
        .config("depth", static_cast<std::uint64_t>(depth))
        .config("phases", phases)
        .config("threads", static_cast<std::uint64_t>(threads))
        .metric("engine_ms", engine.stats().wall_seconds * 1e3)
        .metric("lockstep_ms", lockstep.stats().wall_seconds * 1e3)
        .metric("pairs_per_sec", engine.stats().pairs_per_second())
        .metric("engine_gain",
                lockstep.stats().wall_seconds / engine.stats().wall_seconds)
        .emit();
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "expected shape: deepest graphs (chain) gain most from pipelining; "
      "wide flat graphs parallelize within a phase and gain least.\n");
  return 0;
}
