// Machine-readable benchmark output.
//
// Every bench binary prints, alongside its human-oriented table, one JSON
// object per measured row so sweeps can be diffed across commits without
// scraping tables. A line looks like
//
//   {"bench":"micro","name":"scheduler_pair_bookkeeping/512",
//    "config":{"n":512},"ns_per_op":281.7,"pairs_per_sec":3551234.0}
//
// Lines are self-delimiting (one object per line, line starts with
// {"bench":) so a consumer can grep them out of mixed stdout. The merged
// before/after trajectory lives in BENCH_seed_vs_flat.json at the repo
// root; ROADMAP.md describes the workflow.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace df::bench {

/// Builder for one JSON benchmark line. Config fields describe the measured
/// configuration (graph size, threads, window, ...); metrics are the
/// measured numbers. Keys must be plain identifiers; string values are
/// emitted verbatim (no escaping), which every caller in bench/ satisfies.
class JsonLine {
 public:
  JsonLine(const std::string& bench, const std::string& name) {
    out_ = "{\"bench\":\"" + bench + "\",\"name\":\"" + name + "\"";
  }

  JsonLine& config(const std::string& key, const std::string& value) {
    config_ += (config_.empty() ? "" : ",");
    config_ += "\"" + key + "\":\"" + value + "\"";
    return *this;
  }
  JsonLine& config(const std::string& key, std::uint64_t value) {
    config_ += (config_.empty() ? "" : ",");
    config_ += "\"" + key + "\":" + std::to_string(value);
    return *this;
  }
  JsonLine& config(const std::string& key, double value) {
    config_ += (config_.empty() ? "" : ",");
    config_ += "\"" + key + "\":" + format(value);
    return *this;
  }

  JsonLine& metric(const std::string& key, double value) {
    metrics_ += ",\"" + key + "\":" + format(value);
    return *this;
  }
  JsonLine& metric(const std::string& key, std::uint64_t value) {
    metrics_ += ",\"" + key + "\":" + std::to_string(value);
    return *this;
  }

  /// Prints the assembled line to stdout.
  void emit() const {
    std::printf("%s,\"config\":{%s}%s}\n", out_.c_str(), config_.c_str(),
                metrics_.c_str());
  }

 private:
  static std::string format(double value) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    return buffer;
  }

  std::string out_;
  std::string config_;
  std::string metrics_;
};

}  // namespace df::bench
