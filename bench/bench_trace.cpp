// F3 — Figure 3 reproduction: step-by-step set membership.
//
// Runs the paper's 6-vertex example graph for two phases with a single
// computation thread and one scripted output pattern, printing the
// partial/full/ready membership after every transition in the style of
// Figure 3 (legend:  v  in no set,  <v>  partial only,  (v)  full only,
// [v]  full and ready).
#include <cstdio>

#include "bench_json.hpp"
#include "core/engine.hpp"
#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "model/sources.hpp"
#include "model/synthetic.hpp"
#include "spec/builder.hpp"
#include "trace/tracer.hpp"

int main() {
  using namespace df;

  std::printf("F3: execution trace of the paper's Figure 3 example\n");
  std::printf("legend:  v = no set, <v> = partial, (v) = full, "
              "[v] = full+ready\n\n");

  // Figure 3 narrative: in phase 1 both sources generate output; in phase 2
  // vertex 1 generates no output while vertex 2 does.
  const graph::Dag shape = graph::paper_figure3();
  std::printf("graph (DOT):\n%s\n", graph::to_dot(shape).c_str());

  spec::GraphBuilder b;
  std::vector<graph::VertexId> ids;
  for (graph::VertexId v = 0; v < shape.vertex_count(); ++v) {
    if (shape.name(v) == "v1") {
      ids.push_back(b.add("v1", model::factory_of<model::ReplaySource>(
                                    std::vector<std::optional<event::Value>>{
                                        event::Value(1.0), std::nullopt})));
    } else if (shape.name(v) == "v2") {
      ids.push_back(b.add("v2", model::factory_of<model::ReplaySource>(
                                    std::vector<std::optional<event::Value>>{
                                        event::Value(2.0),
                                        event::Value(3.0)})));
    } else {
      ids.push_back(
          b.add(shape.name(v), model::factory_of<model::ForwardModule>()));
    }
  }
  for (const graph::Edge& e : shape.edges()) {
    b.connect(ids[e.from], e.from_port, ids[e.to], e.to_port);
  }
  const core::Program program = std::move(b).build(1);

  trace::Tracer tracer;
  core::EngineOptions options;
  options.threads = 1;  // deterministic single-worker interleaving
  options.observer = &tracer;
  core::Engine engine(program, options);
  engine.run(2, nullptr);

  int step = 0;
  for (const auto& s : tracer.steps()) {
    std::printf("step %d: %s\n", ++step,
                trace::Tracer::render_step(s, 6).c_str());
  }
  std::printf("executed pairs: %llu, messages: %llu, phases: %llu\n",
              static_cast<unsigned long long>(engine.stats().executed_pairs),
              static_cast<unsigned long long>(
                  engine.stats().messages_delivered),
              static_cast<unsigned long long>(
                  engine.stats().phases_completed));
  bench::JsonLine("trace", "figure3")
      .config("phases", std::uint64_t{2})
      .metric("steps", static_cast<std::uint64_t>(tracer.steps().size()))
      .metric("executed_pairs", engine.stats().executed_pairs)
      .metric("messages", engine.stats().messages_delivered)
      .emit();
  return 0;
}
